"""Ambient engine policy for the synchronous simulator.

Two engines can execute a structured-message baseline: the interpreted
active-set engine (:func:`repro.local.simulator.run_synchronous`, one
Python callable dispatch per node per round) and the vectorized array
engine (:func:`repro.local.vectorized.run_vectorized`, one array kernel
per round over whole-network state, on a pluggable
:mod:`~repro.local.array_backend`).  Which one runs is a *policy*
decision that has to reach call sites buried many layers deep —
``deg_plus_one_coloring`` calls ``linial_coloring`` calls the engine —
so the choice travels the same way message accounting does
(:class:`~repro.local.simulator.MessageMeter`): as an ambient policy
object rather than an ``engine=`` parameter threaded through every
signature::

    with EnginePolicy("vectorized"):
        colours, palette, rounds = linial_coloring(graph)
    # every kernel-capable run inside used the array engine

Modes
-----
``auto``
    Use the array engine wherever a kernel exists and an array backend
    is available; fall back to the interpreted engine otherwise.  This
    is the default (also with no policy active at all).
``interpreted``
    Always use the interpreted engine.
``vectorized``
    Require the array engine; a kernel-capable call site raises
    :class:`~repro.local.vectorized.EngineUnavailable` when the backend
    is missing or the algorithm has no kernel.

A policy may additionally pin the array *backend* by registry name
(``EnginePolicy("vectorized", backend="numpy")``); with no pin the
default backend serves.

The policy also records what actually served work inside it: run
counts per engine, the set of array backends used, and a per-dispatch
round account keyed ``"engine/kernel/backend"`` (:attr:`dispatches`) —
which is how the experiment runner stamps ``engine`` provenance (e.g.
``"vectorized[numpy]"``) and ``engine_rounds`` telemetry onto each
stored :class:`~repro.experiments.store.CellResult`.
"""

from __future__ import annotations

__all__ = [
    "ENGINE_MODES",
    "EnginePolicy",
    "EngineScope",
    "current_engine_mode",
    "current_backend_preference",
    "current_policy",
    "resolve_engine_mode",
    "note_engine_use",
]

#: The valid engine-selection modes, in CLI/`--engine` spelling.
ENGINE_MODES = ("auto", "interpreted", "vectorized")

# Policies currently in effect; the innermost decides the mode and
# backend, every one in scope observes usage.  Per-process state, like
# the meter stack: forked sweep workers each scope their own cells.
_ENGINE_STACK: list["EnginePolicy"] = []


class EnginePolicy:
    """Ambient engine choice plus a usage account for everything inside."""

    def __init__(self, mode: str = "auto", backend: str | None = None) -> None:
        if mode not in ENGINE_MODES:
            raise ValueError(
                f"unknown engine mode {mode!r} (expected one of {ENGINE_MODES})"
            )
        self.mode = mode
        #: Array-backend registry name to pin, or None for the default.
        self.backend = backend
        self.vectorized_runs = 0
        self.interpreted_runs = 0
        #: Names of array backends that actually served work in scope.
        self.backends_used: set[str] = set()
        #: Rounds simulated per dispatch, keyed ``"engine/kernel/backend"``
        #: (backend is ``"-"`` for interpreted runs).
        self.dispatches: dict[str, int] = {}

    def __enter__(self) -> "EnginePolicy":
        _ENGINE_STACK.append(self)
        return self

    def __exit__(self, *exc_info) -> bool:
        _ENGINE_STACK.remove(self)
        return False

    def note(
        self,
        kind: str,
        *,
        kernel: str | None = None,
        backend: str | None = None,
        rounds: int = 0,
    ) -> None:
        """Observe one unit of work served by engine ``kind``."""
        if kind == "vectorized":
            self.vectorized_runs += 1
            if backend:
                self.backends_used.add(backend)
        else:
            self.interpreted_runs += 1
            backend = None
        key = f"{kind}/{kernel or 'unknown'}/{backend or '-'}"
        self.dispatches[key] = self.dispatches.get(key, 0) + rounds

    @property
    def engine_used(self) -> str | None:
        """Which engine(s) served work inside the policy's scope.

        ``"vectorized[<backend>]"`` when only the array engine did
        (e.g. ``"vectorized[numpy]"``), ``"interpreted"`` when only the
        interpreted engine did, ``"mixed"`` when both did (e.g. a
        transform whose peeling and forest colourings ran on arrays
        while an adapter baseline ran interpreted), ``None`` when no
        engine ran at all (analytic cells).
        """
        if self.vectorized_runs and self.interpreted_runs:
            return "mixed"
        if self.vectorized_runs:
            backends = "/".join(sorted(self.backends_used)) or "?"
            return f"vectorized[{backends}]"
        if self.interpreted_runs:
            return "interpreted"
        return None


#: Backwards-compatible alias — ``EngineScope`` predates the policy
#: object and appears throughout older call sites and docs.
EngineScope = EnginePolicy


def current_policy() -> EnginePolicy | None:
    """The innermost active policy, or None outside any scope."""
    return _ENGINE_STACK[-1] if _ENGINE_STACK else None


def current_engine_mode() -> str:
    """The innermost policy's mode, or ``"auto"`` with no policy active."""
    return _ENGINE_STACK[-1].mode if _ENGINE_STACK else "auto"


def current_backend_preference() -> str | None:
    """The innermost policy's pinned backend name, or None."""
    return _ENGINE_STACK[-1].backend if _ENGINE_STACK else None


def resolve_engine_mode(engine: str | None = None) -> str:
    """An explicit ``engine`` argument, validated; else the ambient mode."""
    if engine is None:
        return current_engine_mode()
    if engine not in ENGINE_MODES:
        raise ValueError(
            f"unknown engine mode {engine!r} (expected one of {ENGINE_MODES})"
        )
    return engine


def note_engine_use(
    kind: str,
    *,
    kernel: str | None = None,
    backend: str | None = None,
    rounds: int = 0,
) -> None:
    """Record that one unit of work ran on engine ``kind`` ("vectorized"
    or "interpreted"), optionally attributing the kernel name, array
    backend and simulated round count; every policy currently in effect
    observes it."""
    for policy in _ENGINE_STACK:
        policy.note(kind, kernel=kernel, backend=backend, rounds=rounds)
