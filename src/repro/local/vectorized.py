"""Vectorized array engine: whole-network rounds as array operations.

The interpreted engine (:func:`repro.local.simulator.run_synchronous`)
dispatches one Python callable per node per round, which caps every
suite at n ≈ 10⁴ on wall-clock alone.  For *structured-message*
baselines — algorithms whose per-round behaviour is a fixed arithmetic
function of the node's colour and its neighbours' colours — the whole
round can instead run as a handful of array operations over flat
per-node state (colours, parent pointers, active masks) indexed by the
existing CSR layout (:meth:`repro.local.csr.CSRAdjacency.array_layout`):
neighbour gathers via ``indptr``/``indices``, segment reductions via
prefix sums, and bit manipulation for the Linial / Cole–Vishkin colour
reductions.

Kernels are written against the :class:`~repro.local.array_backend.ArrayBackend`
protocol — they receive the backend as their first argument and never
import an array library directly — so a GPU or ``array_api`` backend
registered under another name serves the same kernels unchanged.

The contract is **bit-identity**: :func:`run_vectorized` must return a
:class:`~repro.local.simulator.RunResult` whose ``rounds``,
``messages_sent``, ``outputs`` and metered account are exactly what
:func:`run_synchronous` produces for the same network and algorithm —
including raising the same exceptions with the same messages.  The
equivalence suite (``tests/test_engine_equivalence.py`` and the
property tests) pins this on every opted-in baseline.

Algorithms opt in through the first-class :class:`KernelRegistry`
(:data:`KERNELS`): each registration is a :class:`KernelSpec` carrying
capability metadata (algorithm type, problem, constraints, supported
backends) and lookup walks the algorithm's MRO, so subclasses of a
kernel-capable algorithm inherit its kernel.  :func:`supports_vectorized`
reports capability and :func:`select_engine` resolves the
ambient/explicit engine mode (:mod:`repro.local.engine`) to a runner,
falling back to the interpreted engine for everything without a kernel.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.local import array_backend
from repro.local.array_backend import ArrayBackend, DEFAULT_BACKEND
from repro.local.engine import (
    current_backend_preference,
    note_engine_use,
    resolve_engine_mode,
)
from repro.local.network import Network
from repro.obs import record_phase
from repro.local.simulator import (
    RunResult,
    SynchronousAlgorithm,
    _report_to_meters,
    run_synchronous,
)

__all__ = [
    "EngineUnavailable",
    "KernelRegistry",
    "KernelSpec",
    "KERNELS",
    "active_backend",
    "numpy_available",
    "register_kernel",
    "supports_vectorized",
    "run_vectorized",
    "select_engine",
    "use_vectorized",
]


class EngineUnavailable(RuntimeError):
    """The vectorized engine was explicitly requested but cannot serve."""


def numpy_available() -> bool:
    """Whether the default (NumPy) array backend is usable.

    Delegates to :func:`repro.local.array_backend.numpy_available` at
    call time, so monkeypatching either function simulates a numpy-free
    interpreter for every availability check in the stack.
    """
    return array_backend.numpy_available()


# ----------------------------------------------------------------------
# kernel registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KernelSpec:
    """One kernel registration: the callable plus capability metadata.

    A kernel takes ``(backend, network, algorithm, max_rounds)`` and
    returns ``(rounds, messages_sent, outputs)``; ``backends`` names the
    array backends (by registry name) the kernel is written for.
    """

    algorithm_type: type
    kernel: Callable
    name: str
    problem: str = ""
    constraints: str = ""
    backends: tuple[str, ...] = (DEFAULT_BACKEND,)


class KernelRegistry:
    """Kernel specs keyed by algorithm type, with MRO-aware lookup.

    Lookup walks ``type(algorithm).__mro__`` so subclasses of a
    kernel-capable algorithm resolve to the base class's kernel instead
    of silently falling back to the interpreted engine.  Registration
    refuses to overwrite an existing (algorithm type, backend) pair
    unless ``replace=True``.
    """

    def __init__(self) -> None:
        self._by_type: dict[type, list[KernelSpec]] = {}

    def register(self, spec: KernelSpec, *, replace: bool = False) -> KernelSpec:
        specs = self._by_type.setdefault(spec.algorithm_type, [])
        for position, existing in enumerate(specs):
            overlap = sorted(set(existing.backends) & set(spec.backends))
            if not overlap:
                continue
            if not replace:
                raise ValueError(
                    f"kernel {spec.name!r} would overwrite kernel "
                    f"{existing.name!r} for {spec.algorithm_type.__name__} "
                    f"on backend(s) {', '.join(overlap)}; "
                    f"pass replace=True to replace it deliberately"
                )
            specs[position] = spec
            return spec
        specs.append(spec)
        return spec

    def registered(self, algorithm_type: type, backend: str = DEFAULT_BACKEND) -> bool:
        """Exact-type check (no MRO walk); used to guard builtins."""
        return any(
            backend in spec.backends
            for spec in self._by_type.get(algorithm_type, ())
        )

    def lookup(
        self, algorithm: SynchronousAlgorithm, backend: str = DEFAULT_BACKEND
    ) -> KernelSpec | None:
        """The most specific spec serving ``algorithm`` on ``backend``."""
        for klass in type(algorithm).__mro__:
            for spec in self._by_type.get(klass, ()):
                if backend in spec.backends:
                    return spec
        return None

    def specs(self) -> tuple[KernelSpec, ...]:
        """Every registration, in registration order per type."""
        return tuple(
            spec for specs in self._by_type.values() for spec in specs
        )


#: The process-wide kernel registry.
KERNELS = KernelRegistry()
_BUILTINS_LOADED = False


def register_kernel(
    algorithm_type: type,
    *,
    name: str | None = None,
    problem: str = "",
    constraints: str = "",
    backends: tuple[str, ...] = (DEFAULT_BACKEND,),
    replace: bool = False,
):
    """Decorator mapping an algorithm type to a kernel in :data:`KERNELS`.

    Raises :class:`ValueError` when the (algorithm type, backend) pair is
    already registered, naming both kernels; pass ``replace=True`` to
    swap a kernel in deliberately (tests, experimental backends).
    """

    def decorate(kernel: Callable) -> Callable:
        KERNELS.register(
            KernelSpec(
                algorithm_type=algorithm_type,
                kernel=kernel,
                name=name or kernel.__name__,
                problem=problem,
                constraints=constraints,
                backends=tuple(backends),
            ),
            replace=replace,
        )
        return kernel

    return decorate


def _ensure_builtin_kernels() -> None:
    # Built-in kernels are registered lazily to avoid a local ↔ baselines
    # import cycle; a user registration made first wins (setdefault
    # semantics, so eager test doubles do not trip the overwrite guard).
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    from repro.baselines.color_reduction import ColorClassReduction
    from repro.baselines.forest_coloring import ForestThreeColoring
    from repro.baselines.linial import LinialColoring
    from repro.baselines.mis import ColorClassMIS

    builtins = (
        KernelSpec(
            algorithm_type=LinialColoring,
            kernel=_linial_kernel,
            name="linial",
            problem="colouring",
            constraints="identifiers in [1, n^c]; colour count follows the reduction schedule",
        ),
        KernelSpec(
            algorithm_type=ForestThreeColoring,
            kernel=_forest_kernel,
            name="forest-3-coloring",
            problem="colouring",
            constraints="input must be a rooted forest with proper identifier colours",
        ),
        KernelSpec(
            algorithm_type=ColorClassMIS,
            kernel=_mis_kernel,
            name="color-class-mis",
            problem="mis",
            constraints="node inputs must be a proper colouring with palette shared['num_classes']",
        ),
        KernelSpec(
            algorithm_type=ColorClassReduction,
            kernel=_color_reduction_kernel,
            name="color-class-reduction",
            problem="colouring",
            constraints="node inputs must be a proper colouring with palette shared['num_classes']",
        ),
    )
    for spec in builtins:
        if not KERNELS.registered(spec.algorithm_type):
            KERNELS.register(spec)
    _BUILTINS_LOADED = True


def supports_vectorized(
    algorithm: SynchronousAlgorithm, backend: str | None = None
) -> bool:
    """Whether ``algorithm`` has a registered array kernel (MRO-aware)."""
    _ensure_builtin_kernels()
    return KERNELS.lookup(algorithm, _resolve_backend_name(backend)) is not None


# ----------------------------------------------------------------------
# backend resolution
# ----------------------------------------------------------------------
def _resolve_backend_name(backend: str | None = None) -> str:
    """Explicit argument, else the ambient policy's pin, else the default."""
    return backend or current_backend_preference() or DEFAULT_BACKEND


def _backend_for(name: str) -> ArrayBackend | None:
    """The backend instance serving ``name``, or None when unavailable."""
    if name == DEFAULT_BACKEND and not numpy_available():
        return None
    try:
        return array_backend.get_backend(name)
    except KeyError:
        return None


def _require_backend(name: str) -> ArrayBackend:
    xp = _backend_for(name)
    if xp is None:
        if name == DEFAULT_BACKEND:
            raise EngineUnavailable(
                "the vectorized engine requires numpy, which is not importable"
            )
        raise EngineUnavailable(
            f"the vectorized engine requires the {name!r} array backend, "
            f"which is not registered"
        )
    return xp


# ----------------------------------------------------------------------
# array primitives
# ----------------------------------------------------------------------
def _identifier_array(network: Network, xp: ArrayBackend):
    """Node identifiers as an int64 array in CSR index order (cached)."""
    caches = getattr(network, "_identifier_arrays", None)
    if caches is None:
        caches = {}
        network._identifier_arrays = caches
    cached = caches.get(xp.name)
    if cached is None:
        identifiers = network.identifiers
        cached = xp.fromiter(
            (identifiers[node] for node in network.csr.nodes),
            dtype=xp.int64,
            count=network.csr.num_nodes,
        )
        caches[xp.name] = cached
    return cached


def _node_input_array(network: Network, xp: ArrayBackend):
    """Per-node inputs (colour classes) as int64 in CSR index order."""
    node_inputs = network.node_inputs
    return xp.fromiter(
        (node_inputs[node] for node in network.csr.nodes),
        dtype=xp.int64,
        count=network.csr.num_nodes,
    )


def _round_cap(network: Network, max_rounds: int | None) -> int:
    # Mirrors run_synchronous's default cap so the upfront check below
    # raises exactly when the interpreted loop would.
    return max_rounds if max_rounds is not None else 4 * network.num_nodes + 64


def _check_round_cap(algorithm, total_rounds: int, cap: int) -> None:
    # The interpreted engine raises at the top of round ``cap`` when the
    # algorithm has not terminated; with a schedule known upfront, that is
    # exactly ``total_rounds > cap``.
    if total_rounds > cap:
        raise RuntimeError(
            f"{algorithm.name} exceeded the round cap of {cap} rounds"
        )


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------
def _linial_kernel(xp: ArrayBackend, network: Network, algorithm, max_rounds):
    """Linial colour reduction, one array pass per scheduled round.

    State is one colour per node; a round with field parameters
    ``(q, degree)`` encodes colours as degree-``degree`` polynomials over
    ``GF(q)`` (a digit matrix), evaluates all of them at every
    ``x ∈ [0, q)`` at once, and picks each node's first evaluation point
    uncontested by its differently-coloured neighbours.  Conflicts are
    tested one ``x``-column at a time so peak memory stays at O(E) —
    an (E, q) conflict matrix would be hundreds of MB at n = 10⁶.
    """
    from repro.baselines.linial import reduction_schedule

    n = network.csr.num_nodes
    if n == 0:
        return 0, 0, {}
    schedule, _ = reduction_schedule(network.max_identifier + 1, network.max_degree)
    total_rounds = len(schedule)
    _check_round_cap(algorithm, total_rounds, _round_cap(network, max_rounds))

    indptr, indices, edge_sources = network.csr.array_layout()
    colours = _identifier_array(network, xp).copy()
    node_range = xp.arange(n, dtype=xp.int64)

    for q, degree, _ in schedule:
        width = degree + 1
        # digits[i, j] = j-th base-q digit of node i's colour.
        digits = xp.empty((n, width), dtype=xp.int64)
        value = colours.copy()
        for j in range(width):
            digits[:, j] = value % q
            value //= q
        # powers[j, x] = x^j mod q  →  values[i, x] = P_i(x) mod q.
        xs = xp.arange(q, dtype=xp.int64)
        powers = xp.empty((width, q), dtype=xp.int64)
        powers[0] = 1
        for j in range(1, width):
            powers[j] = (powers[j - 1] * xs) % q
        values = (digits @ powers) % q

        # A neighbour contests x only if its colour differs (linial_step
        # skips same-coloured neighbours) and its polynomial agrees at x.
        differing = colours[edge_sources] != colours[indices]
        free = xp.empty((n, q), dtype=xp.bool_)
        for x in range(q):
            column = values[:, x]
            clashes = differing & (column[edge_sources] == column[indices])
            free[:, x] = xp.segment_sum(clashes, indptr) == 0
        if not free.any(axis=1).all():
            raise RuntimeError(
                "no free evaluation point found; the field parameters are inconsistent"
            )
        x_star = free.argmax(axis=1)
        colours = x_star * q + values[node_range, x_star]

    outputs = {
        node: colour + 1
        for node, colour in zip(network.csr.nodes, colours.tolist())
    }
    return total_rounds, total_rounds * len(indices), outputs


def _forest_kernel(xp: ArrayBackend, network: Network, algorithm, max_rounds):
    """Cole–Vishkin forest 3-colouring as whole-forest bit manipulation.

    Reduce rounds: every node's new colour is ``2·i + b`` where ``i`` is
    the lowest bit position where it differs from its parent (roots use a
    virtual parent ``colour ^ 1``).  Then six rounds alternate shift-down
    (adopt the parent's colour; roots pick the least colour in {0, 1, 2}
    different from their own) and recolouring of classes 5, 4, 3 down
    into {0, 1, 2} using segment reductions over neighbour colours.
    """
    from repro.baselines.forest_coloring import reduction_iterations

    n = network.csr.num_nodes
    if n == 0:
        return 0, 0, {}
    reduce_rounds = reduction_iterations(network.max_identifier)
    total_rounds = reduce_rounds + 6
    _check_round_cap(algorithm, total_rounds, _round_cap(network, max_rounds))

    indptr, indices, edge_sources = network.csr.array_layout()
    csr = network.csr
    node_index = csr.index
    parents = xp.full(n, -1, dtype=xp.int64)
    for node, parent in network.node_inputs.items():
        if parent is not None:
            parents[node_index[node]] = node_index[parent]
    roots = parents < 0
    parent_or_self = xp.where(roots, xp.arange(n, dtype=xp.int64), parents)

    colours = _identifier_array(network, xp).copy()
    for _ in range(reduce_rounds):
        parent_colours = xp.where(roots, colours ^ 1, colours[parent_or_self])
        differing = colours ^ parent_colours
        if not differing.all():
            raise ValueError(
                "adjacent nodes share a colour; the colouring is not proper"
            )
        low = differing & -differing
        position = xp.bitwise_count(low - 1).astype(xp.int64)
        colours = 2 * position + ((colours >> position) & 1)

    for phase in range(1, 7):
        if phase % 2 == 1:  # shift-down
            root_colours = xp.where(colours == 0, 1, 0)
            colours = xp.where(roots, root_colours, colours[parent_or_self])
            continue
        eliminated = {2: 5, 4: 4, 6: 3}[phase]
        moving = colours == eliminated
        neighbour_colours = colours[indices]
        seen0 = xp.segment_sum(neighbour_colours == 0, indptr) > 0
        seen1 = xp.segment_sum(neighbour_colours == 1, indptr) > 0
        seen2 = xp.segment_sum(neighbour_colours == 2, indptr) > 0
        if (moving & seen0 & seen1 & seen2).any():
            # min() over an empty candidate set in the interpreted step.
            raise ValueError(
                "min() arg is an empty sequence"
            )
        replacement = xp.where(~seen0, 0, xp.where(~seen1, 1, 2))
        colours = xp.where(moving, replacement, colours)

    outputs = {
        node: colour + 1
        for node, colour in zip(csr.nodes, colours.tolist())
    }
    return total_rounds, total_rounds * len(indices), outputs


def _mis_kernel(xp: ArrayBackend, network: Network, algorithm, max_rounds):
    """Colour-class MIS sweep as whole-network mask updates.

    One round per colour class plus one propagation round.  Per round
    ``r``: a node is blocked once any neighbour joined in an *earlier*
    round (messages carry the previous round's ``in_mis``), and the
    nodes of class ``r`` join unless blocked.  Classes of a proper
    colouring are independent sets, so simultaneous joins never
    conflict — and on an improper input the kernel misbehaves exactly
    like the interpreted transition (both endpoints join), keeping
    bit-identity unconditional.
    """
    n = network.csr.num_nodes
    if n == 0:
        return 0, 0, {}
    num_classes = network.shared["num_classes"]
    total_rounds = num_classes + 1
    _check_round_cap(algorithm, total_rounds, _round_cap(network, max_rounds))

    indptr, indices, _ = network.csr.array_layout()
    colour = _node_input_array(network, xp)
    in_mis = xp.zeros(n, dtype=xp.bool_)
    blocked = xp.zeros(n, dtype=xp.bool_)
    for r in range(1, total_rounds + 1):
        # Gather before update: the segment sum sees in_mis as of the
        # end of round r-1, which is what the messages carried.
        neighbour_joined = xp.segment_sum(in_mis[indices], indptr) > 0
        blocked = blocked | neighbour_joined
        in_mis = in_mis | ((colour == r) & ~blocked)

    outputs = {
        node: bool(flag)
        for node, flag in zip(network.csr.nodes, in_mis.tolist())
    }
    return total_rounds, total_rounds * len(indices), outputs


def _color_reduction_kernel(xp: ArrayBackend, network: Network, algorithm, max_rounds):
    """Δ+1 colour-class reduction as per-round scatter/mex over classes.

    One round per class of the initial proper colouring.  In round ``r``
    the nodes of class ``r`` pick the smallest colour not taken by an
    already-finished neighbour (messages carry the previous round's
    ``final``).  The mex runs as a scatter into a compact
    (moving-nodes × palette) bitmap: a node has at most ``deg``
    finished neighbours, so some colour in ``[1, max_degree + 1]`` is
    always free and the bitmap width is bounded by ``max_degree + 2``.
    """
    n = network.csr.num_nodes
    if n == 0:
        return 0, 0, {}
    num_classes = network.shared["num_classes"]
    total_rounds = num_classes
    _check_round_cap(algorithm, total_rounds, _round_cap(network, max_rounds))

    indptr, indices, edge_sources = network.csr.array_layout()
    colour = _node_input_array(network, xp)
    final = xp.zeros(n, dtype=xp.int64)  # 0 = not yet recoloured (None)
    width = network.max_degree + 2
    for r in range(1, total_rounds + 1):
        moving = (colour == r) & (final == 0)
        rows = int(moving.sum())
        if rows == 0:
            continue
        # Compact row index for each moving node; valid only under `moving`.
        row_of_node = xp.cumsum(moving, dtype=xp.int64) - 1
        # CSR rows owned by a moving node, restricted to neighbours that
        # finished in an earlier round (final gathered before update —
        # exactly what the messages carried).
        relevant = moving[edge_sources] & (final[indices] > 0)
        used = xp.zeros((rows, width), dtype=xp.bool_)
        used[row_of_node[edge_sources[relevant]], final[indices[relevant]]] = True
        # Smallest colour ≥ 1 not marked used — guaranteed within width.
        mex = (~used[:, 1:]).argmax(axis=1) + 1
        picks = xp.zeros(n, dtype=xp.int64)
        picks[moving] = mex
        final = xp.where(moving, picks, final)

    outputs = {
        node: (value if value else None)
        for node, value in zip(network.csr.nodes, final.tolist())
    }
    return total_rounds, total_rounds * len(indices), outputs


# ----------------------------------------------------------------------
# engine entry points
# ----------------------------------------------------------------------
def run_vectorized(
    network: Network,
    algorithm: SynchronousAlgorithm,
    max_rounds: int | None = None,
    backend: str | None = None,
) -> RunResult:
    """Run ``algorithm`` on the array engine (bit-identical results).

    ``backend`` pins an array backend by registry name; the default is
    the ambient policy's pin, else NumPy.  Raises
    :class:`EngineUnavailable` when the backend is missing or the
    algorithm has no registered kernel; use :func:`select_engine` to
    fall back automatically.
    """
    name = _resolve_backend_name(backend)
    xp = _require_backend(name)
    _ensure_builtin_kernels()
    spec = KERNELS.lookup(algorithm, name)
    if spec is None:
        raise EngineUnavailable(
            f"{algorithm.name} has no vectorized kernel; "
            f"run it with run_synchronous or engine='auto'"
        )
    simulate_start = time.perf_counter()
    rounds, messages_sent, outputs = spec.kernel(xp, network, algorithm, max_rounds)
    note_engine_use("vectorized", kernel=spec.name, backend=xp.name, rounds=rounds)
    record_phase("simulate", time.perf_counter() - simulate_start)
    result = RunResult(
        algorithm=algorithm.name,
        rounds=rounds,
        outputs=outputs,
        messages_sent=messages_sent,
    )
    _report_to_meters(result)
    return result


def select_engine(
    algorithm: SynchronousAlgorithm, engine: str | None = None
) -> Callable[..., RunResult]:
    """Resolve the engine mode for ``algorithm`` to a runner callable.

    ``engine`` overrides the ambient :class:`~repro.local.engine.EnginePolicy`
    mode; ``"auto"`` (the default) picks :func:`run_vectorized` exactly
    when the algorithm has a kernel and the policy's array backend is
    available.
    """
    mode = resolve_engine_mode(engine)
    if mode == "interpreted":
        return run_synchronous
    name = _resolve_backend_name()
    if mode == "vectorized":
        _require_backend(name)
        if not supports_vectorized(algorithm, name):
            raise EngineUnavailable(
                f"{algorithm.name} has no vectorized kernel"
            )
        return run_vectorized
    if _backend_for(name) is not None and supports_vectorized(algorithm, name):
        return run_vectorized
    return run_synchronous


def use_vectorized(engine: str | None = None) -> bool:
    """Whether non-simulator array code (the decomposition peels) should
    take its vectorized path under the resolved engine mode.

    Explicit ``"vectorized"`` without an available backend raises rather
    than silently degrading; ``"auto"`` degrades.
    """
    mode = resolve_engine_mode(engine)
    if mode == "interpreted":
        return False
    name = _resolve_backend_name()
    if mode == "vectorized":
        _require_backend(name)
        return True
    return _backend_for(name) is not None


def active_backend(engine: str | None = None) -> ArrayBackend | None:
    """The array backend non-simulator code should run on, or None.

    Combines :func:`use_vectorized` with backend resolution: returns the
    backend instance when the resolved mode takes the vectorized path,
    None when it degrades to interpreted code.
    """
    if not use_vectorized(engine):
        return None
    return _require_backend(_resolve_backend_name())
