"""Vectorized array engine: whole-network rounds as NumPy operations.

The interpreted engine (:func:`repro.local.simulator.run_synchronous`)
dispatches one Python callable per node per round, which caps every
suite at n ≈ 10⁴ on wall-clock alone.  For *structured-message*
baselines — algorithms whose per-round behaviour is a fixed arithmetic
function of the node's colour and its neighbours' colours — the whole
round can instead run as a handful of array operations over flat
per-node state (colours, parent pointers, active masks) indexed by the
existing CSR layout (:meth:`repro.local.csr.CSRAdjacency.array_layout`):
neighbour gathers via ``indptr``/``indices``, segment reductions via
prefix sums, and bit manipulation for the Linial / Cole–Vishkin colour
reductions.

The contract is **bit-identity**: :func:`run_vectorized` must return a
:class:`~repro.local.simulator.RunResult` whose ``rounds``,
``messages_sent``, ``outputs`` and metered account are exactly what
:func:`run_synchronous` produces for the same network and algorithm —
including raising the same exceptions with the same messages.  The
equivalence suite (``tests/test_engine_equivalence.py`` and the
property tests) pins this on every opted-in baseline.

Algorithms opt in through a kernel registry keyed by algorithm type;
:func:`supports_vectorized` reports capability and
:func:`select_engine` resolves the ambient/explicit engine mode
(:mod:`repro.local.engine`) to a runner, falling back to the
interpreted engine for everything without a kernel.
"""

from __future__ import annotations

import time
from typing import Callable

try:  # numpy is a declared dependency, but the engine degrades gracefully
    import numpy as np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    np = None

from repro.local.engine import note_engine_use, resolve_engine_mode
from repro.local.network import Network
from repro.obs import record_phase
from repro.local.simulator import (
    RunResult,
    SynchronousAlgorithm,
    _report_to_meters,
    run_synchronous,
)

__all__ = [
    "EngineUnavailable",
    "numpy_available",
    "register_kernel",
    "supports_vectorized",
    "run_vectorized",
    "select_engine",
    "use_vectorized",
]


class EngineUnavailable(RuntimeError):
    """The vectorized engine was explicitly requested but cannot serve."""


def numpy_available() -> bool:
    return np is not None


# Kernels keyed by algorithm type.  A kernel takes ``(network, algorithm,
# max_rounds)`` and returns ``(rounds, messages_sent, outputs)``; built-in
# kernels are registered lazily to avoid a local ↔ baselines import cycle.
_KERNELS: dict[type, Callable] = {}
_BUILTINS_LOADED = False


def register_kernel(algorithm_type: type):
    """Class decorator-style hook mapping an algorithm type to a kernel."""

    def decorate(kernel: Callable) -> Callable:
        _KERNELS[algorithm_type] = kernel
        return kernel

    return decorate


def _ensure_builtin_kernels() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    from repro.baselines.forest_coloring import ForestThreeColoring
    from repro.baselines.linial import LinialColoring

    _KERNELS.setdefault(LinialColoring, _linial_kernel)
    _KERNELS.setdefault(ForestThreeColoring, _forest_kernel)
    _BUILTINS_LOADED = True


def supports_vectorized(algorithm: SynchronousAlgorithm) -> bool:
    """Whether ``algorithm`` has a registered array kernel."""
    _ensure_builtin_kernels()
    return type(algorithm) in _KERNELS


# ----------------------------------------------------------------------
# array primitives
# ----------------------------------------------------------------------
def _segment_sum(values, indptr):
    """Per-node sums of per-edge ``values`` under the CSR ``indptr``.

    Prefix sums rather than ``np.add.reduceat`` — reduceat silently
    misreads empty segments (degree-0 nodes), prefix differences are
    exact everywhere.
    """
    prefix = np.zeros(values.shape[0] + 1, dtype=np.int64)
    np.cumsum(values, dtype=np.int64, out=prefix[1:])
    return prefix[indptr[1:]] - prefix[indptr[:-1]]


def _identifier_array(network: Network):
    """Node identifiers as an int64 array in CSR index order (cached)."""
    cached = getattr(network, "_identifier_array", None)
    if cached is None:
        identifiers = network.identifiers
        cached = np.fromiter(
            (identifiers[node] for node in network.csr.nodes),
            dtype=np.int64,
            count=network.csr.num_nodes,
        )
        network._identifier_array = cached
    return cached


def _round_cap(network: Network, max_rounds: int | None) -> int:
    # Mirrors run_synchronous's default cap so the upfront check below
    # raises exactly when the interpreted loop would.
    return max_rounds if max_rounds is not None else 4 * network.num_nodes + 64


def _check_round_cap(algorithm, total_rounds: int, cap: int) -> None:
    # The interpreted engine raises at the top of round ``cap`` when the
    # algorithm has not terminated; with a schedule known upfront, that is
    # exactly ``total_rounds > cap``.
    if total_rounds > cap:
        raise RuntimeError(
            f"{algorithm.name} exceeded the round cap of {cap} rounds"
        )


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------
def _linial_kernel(network: Network, algorithm, max_rounds: int | None):
    """Linial colour reduction, one array pass per scheduled round.

    State is one colour per node; a round with field parameters
    ``(q, degree)`` encodes colours as degree-``degree`` polynomials over
    ``GF(q)`` (a digit matrix), evaluates all of them at every
    ``x ∈ [0, q)`` at once, and picks each node's first evaluation point
    uncontested by its differently-coloured neighbours.  Conflicts are
    tested one ``x``-column at a time so peak memory stays at O(E) —
    an (E, q) conflict matrix would be hundreds of MB at n = 10⁶.
    """
    from repro.baselines.linial import reduction_schedule

    n = network.csr.num_nodes
    if n == 0:
        return 0, 0, {}
    schedule, _ = reduction_schedule(network.max_identifier + 1, network.max_degree)
    total_rounds = len(schedule)
    _check_round_cap(algorithm, total_rounds, _round_cap(network, max_rounds))

    indptr, indices, edge_sources = network.csr.array_layout()
    colours = _identifier_array(network).copy()
    node_range = np.arange(n, dtype=np.int64)

    for q, degree, _ in schedule:
        width = degree + 1
        # digits[i, j] = j-th base-q digit of node i's colour.
        digits = np.empty((n, width), dtype=np.int64)
        value = colours.copy()
        for j in range(width):
            digits[:, j] = value % q
            value //= q
        # powers[j, x] = x^j mod q  →  values[i, x] = P_i(x) mod q.
        xs = np.arange(q, dtype=np.int64)
        powers = np.empty((width, q), dtype=np.int64)
        powers[0] = 1
        for j in range(1, width):
            powers[j] = (powers[j - 1] * xs) % q
        values = (digits @ powers) % q

        # A neighbour contests x only if its colour differs (linial_step
        # skips same-coloured neighbours) and its polynomial agrees at x.
        differing = colours[edge_sources] != colours[indices]
        free = np.empty((n, q), dtype=bool)
        for x in range(q):
            column = values[:, x]
            clashes = differing & (column[edge_sources] == column[indices])
            free[:, x] = _segment_sum(clashes, indptr) == 0
        if not free.any(axis=1).all():
            raise RuntimeError(
                "no free evaluation point found; the field parameters are inconsistent"
            )
        x_star = free.argmax(axis=1)
        colours = x_star * q + values[node_range, x_star]

    outputs = {
        node: colour + 1
        for node, colour in zip(network.csr.nodes, colours.tolist())
    }
    return total_rounds, total_rounds * len(indices), outputs


def _forest_kernel(network: Network, algorithm, max_rounds: int | None):
    """Cole–Vishkin forest 3-colouring as whole-forest bit manipulation.

    Reduce rounds: every node's new colour is ``2·i + b`` where ``i`` is
    the lowest bit position where it differs from its parent (roots use a
    virtual parent ``colour ^ 1``).  Then six rounds alternate shift-down
    (adopt the parent's colour; roots pick the least colour in {0, 1, 2}
    different from their own) and recolouring of classes 5, 4, 3 down
    into {0, 1, 2} using segment reductions over neighbour colours.
    """
    from repro.baselines.forest_coloring import reduction_iterations

    n = network.csr.num_nodes
    if n == 0:
        return 0, 0, {}
    reduce_rounds = reduction_iterations(network.max_identifier)
    total_rounds = reduce_rounds + 6
    _check_round_cap(algorithm, total_rounds, _round_cap(network, max_rounds))

    indptr, indices, edge_sources = network.csr.array_layout()
    csr = network.csr
    node_index = csr.index
    parents = np.full(n, -1, dtype=np.int64)
    for node, parent in network.node_inputs.items():
        if parent is not None:
            parents[node_index[node]] = node_index[parent]
    roots = parents < 0
    parent_or_self = np.where(roots, np.arange(n, dtype=np.int64), parents)

    colours = _identifier_array(network).copy()
    for _ in range(reduce_rounds):
        parent_colours = np.where(roots, colours ^ 1, colours[parent_or_self])
        differing = colours ^ parent_colours
        if not differing.all():
            raise ValueError(
                "adjacent nodes share a colour; the colouring is not proper"
            )
        low = differing & -differing
        position = np.bitwise_count(low - 1).astype(np.int64)
        colours = 2 * position + ((colours >> position) & 1)

    for phase in range(1, 7):
        if phase % 2 == 1:  # shift-down
            root_colours = np.where(colours == 0, 1, 0)
            colours = np.where(roots, root_colours, colours[parent_or_self])
            continue
        eliminated = {2: 5, 4: 4, 6: 3}[phase]
        moving = colours == eliminated
        neighbour_colours = colours[indices]
        seen0 = _segment_sum(neighbour_colours == 0, indptr) > 0
        seen1 = _segment_sum(neighbour_colours == 1, indptr) > 0
        seen2 = _segment_sum(neighbour_colours == 2, indptr) > 0
        if (moving & seen0 & seen1 & seen2).any():
            # min() over an empty candidate set in the interpreted step.
            raise ValueError(
                "min() arg is an empty sequence"
            )
        replacement = np.where(~seen0, 0, np.where(~seen1, 1, 2))
        colours = np.where(moving, replacement, colours)

    outputs = {
        node: colour + 1
        for node, colour in zip(csr.nodes, colours.tolist())
    }
    return total_rounds, total_rounds * len(indices), outputs


# ----------------------------------------------------------------------
# engine entry points
# ----------------------------------------------------------------------
def run_vectorized(
    network: Network,
    algorithm: SynchronousAlgorithm,
    max_rounds: int | None = None,
) -> RunResult:
    """Run ``algorithm`` on the array backend (bit-identical results).

    Raises :class:`EngineUnavailable` when numpy is missing or the
    algorithm has no registered kernel; use :func:`select_engine` to fall
    back automatically.
    """
    if np is None:
        raise EngineUnavailable(
            "the vectorized engine requires numpy, which is not importable"
        )
    _ensure_builtin_kernels()
    kernel = _KERNELS.get(type(algorithm))
    if kernel is None:
        raise EngineUnavailable(
            f"{algorithm.name} has no vectorized kernel; "
            f"run it with run_synchronous or engine='auto'"
        )
    simulate_start = time.perf_counter()
    rounds, messages_sent, outputs = kernel(network, algorithm, max_rounds)
    note_engine_use("vectorized")
    record_phase("simulate", time.perf_counter() - simulate_start)
    result = RunResult(
        algorithm=algorithm.name,
        rounds=rounds,
        outputs=outputs,
        messages_sent=messages_sent,
    )
    _report_to_meters(result)
    return result


def select_engine(
    algorithm: SynchronousAlgorithm, engine: str | None = None
) -> Callable[..., RunResult]:
    """Resolve the engine mode for ``algorithm`` to a runner callable.

    ``engine`` overrides the ambient :class:`~repro.local.engine.EngineScope`
    mode; ``"auto"`` (the default) picks :func:`run_vectorized` exactly
    when the algorithm has a kernel and numpy is importable.
    """
    mode = resolve_engine_mode(engine)
    if mode == "interpreted":
        return run_synchronous
    if mode == "vectorized":
        if np is None:
            raise EngineUnavailable(
                "the vectorized engine requires numpy, which is not importable"
            )
        if not supports_vectorized(algorithm):
            raise EngineUnavailable(
                f"{algorithm.name} has no vectorized kernel"
            )
        return run_vectorized
    if numpy_available() and supports_vectorized(algorithm):
        return run_vectorized
    return run_synchronous


def use_vectorized(engine: str | None = None) -> bool:
    """Whether non-simulator array code (the decomposition peels) should
    take its vectorized path under the resolved engine mode.

    Explicit ``"vectorized"`` without numpy raises rather than silently
    degrading; ``"auto"`` degrades.
    """
    mode = resolve_engine_mode(engine)
    if mode == "interpreted":
        return False
    if mode == "vectorized":
        if np is None:
            raise EngineUnavailable(
                "the vectorized engine requires numpy, which is not importable"
            )
        return True
    return numpy_available()
