"""The synchronous round-by-round simulator.

Each round: every node produces its outgoing messages from its current
state, all messages are delivered, and every node computes its new state
from its inbox.  The run ends when every node has terminated; the number of
executed rounds is the algorithm's round complexity on this instance.

Engine design
-------------
The fast engine (:func:`run_synchronous`) is organised around an
**active set**:

* contexts are built in one ``O(n + m)`` pass over the network's cached
  CSR adjacency (the seed version recomputed ``max_degree`` /
  ``max_identifier`` and re-sorted the neighbour list for every node,
  which made context construction ``O(n · m)``);
* every context shares one read-only view of the network's ``shared``
  mapping instead of a per-node copy;
* only nodes that have not yet terminated are polled for messages and
  transitions, and termination is tracked incrementally — a node leaves
  the active set right after the transition in which
  ``has_terminated`` first becomes true, so no per-round ``O(n)``
  re-scan of all nodes happens;
* inboxes are allocated lazily, only for nodes that actually receive a
  message this round.

A node whose ``has_terminated`` is true is *frozen*: its state no longer
changes and it sends no further messages.  Every algorithm in this
repository terminates all nodes in the same round (the deterministic
LOCAL schedules are functions of globally known quantities), for which
the frozen semantics is bit-identical to the seed engine's re-scan loop;
:func:`run_synchronous_reference` keeps the seed behaviour for
equivalence tests and benchmark baselines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Hashable

from repro.local.algorithm import NodeContext, SynchronousAlgorithm
from repro.local.engine import note_engine_use
from repro.local.network import Network
from repro.obs import record_phase


# Meters currently in scope; every engine run reports its message count to
# all of them.  Per-process state: forked sweep workers each meter their
# own cells.
_ACTIVE_METERS: list["MessageMeter"] = []


class MessageMeter:
    """Accumulates message and run counts of every engine run in scope.

    The transformation pipelines invoke the simulator many times (Linial
    iterations, colour-class sweeps, line-graph runs); a meter observes
    them all without threading a counter through every call signature::

        with MessageMeter() as meter:
            solve_on_tree(tree, MISAlgorithm())
        print(meter.messages, meter.runs)

    Meters nest: each one in scope sees every run.
    """

    def __init__(self) -> None:
        self.messages = 0
        self.runs = 0

    def __enter__(self) -> "MessageMeter":
        _ACTIVE_METERS.append(self)
        return self

    def __exit__(self, *exc_info) -> bool:
        _ACTIVE_METERS.remove(self)
        return False


def _report_to_meters(result: "RunResult") -> "RunResult":
    for meter in _ACTIVE_METERS:
        meter.messages += result.messages_sent
        meter.runs += 1
    return result


@dataclass
class RunResult:
    """Result of simulating a synchronous algorithm on a network."""

    algorithm: str
    rounds: int
    outputs: dict[Hashable, Any]
    messages_sent: int = 0
    statistics: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunResult(algorithm={self.algorithm!r}, rounds={self.rounds}, "
            f"nodes={len(self.outputs)}, messages={self.messages_sent})"
        )


def build_contexts(network: Network) -> dict[Hashable, NodeContext]:
    """Build the initial knowledge of every node of ``network`` in O(n + m)."""
    identifiers = network.identifiers
    num_nodes = network.num_nodes
    max_degree = network.max_degree
    max_identifier = network.max_identifier
    node_inputs = network.node_inputs
    shared = MappingProxyType(network.shared)
    contexts: dict[Hashable, NodeContext] = {}
    for node in network.nodes():
        neighbors = network.neighbors(node)
        contexts[node] = NodeContext(
            node=node,
            node_id=identifiers[node],
            degree=len(neighbors),
            neighbors=neighbors,
            neighbor_ids={v: identifiers[v] for v in neighbors},
            num_nodes=num_nodes,
            max_degree=max_degree,
            max_identifier=max_identifier,
            node_input=node_inputs.get(node),
            shared=shared,
        )
    return contexts


def run_synchronous(
    network: Network,
    algorithm: SynchronousAlgorithm,
    max_rounds: int | None = None,
) -> RunResult:
    """Simulate ``algorithm`` on ``network`` until every node terminates.

    Parameters
    ----------
    max_rounds:
        Safety cap; exceeding it raises ``RuntimeError`` (a deterministic
        LOCAL algorithm that does not terminate is a bug, not a feature).
        Defaults to ``4 * n + 64`` which is far above every algorithm in
        this repository.
    """
    simulate_start = time.perf_counter()
    contexts = build_contexts(network)
    states: dict[Hashable, Any] = {
        node: algorithm.initial_state(ctx) for node, ctx in contexts.items()
    }
    if max_rounds is None:
        max_rounds = 4 * network.num_nodes + 64

    has_terminated = algorithm.has_terminated
    messages = algorithm.messages
    transition = algorithm.transition

    # Nodes still to terminate, kept in network order so that inbox
    # insertion order matches the seed engine exactly.
    active = [
        node for node, ctx in contexts.items() if not has_terminated(states[node], ctx)
    ]

    rounds = 0
    messages_sent = 0
    while active:
        if rounds >= max_rounds:
            raise RuntimeError(
                f"{algorithm.name} exceeded the round cap of {max_rounds} rounds"
            )
        rounds += 1
        # send phase — inboxes only for actual recipients
        inboxes: dict[Hashable, dict[Hashable, Any]] = {}
        for node in active:
            ctx = contexts[node]
            outgoing = messages(states[node], ctx)
            if not outgoing:
                continue
            neighbor_ids = ctx.neighbor_ids
            for neighbor, message in outgoing.items():
                if neighbor not in neighbor_ids:
                    raise ValueError(
                        f"{algorithm.name}: node {node!r} attempted to message "
                        f"non-neighbor {neighbor!r}"
                    )
                box = inboxes.get(neighbor)
                if box is None:
                    box = inboxes[neighbor] = {}
                box[node] = message
            messages_sent += len(outgoing)
        # receive phase — only active nodes transition; a node is dropped
        # from the active set as soon as it terminates.
        still_active = []
        for node in active:
            ctx = contexts[node]
            inbox = inboxes.get(node)
            if inbox is None:
                inbox = {}
            state = transition(states[node], inbox, ctx)
            states[node] = state
            if not has_terminated(state, ctx):
                still_active.append(node)
        active = still_active

    outputs = {node: algorithm.output(states[node], ctx) for node, ctx in contexts.items()}
    note_engine_use("interpreted", kernel=algorithm.name, rounds=rounds)
    record_phase("simulate", time.perf_counter() - simulate_start)
    return _report_to_meters(RunResult(
        algorithm=algorithm.name,
        rounds=rounds,
        outputs=outputs,
        messages_sent=messages_sent,
    ))


# ----------------------------------------------------------------------
# reference engine (the seed implementation, kept verbatim in behaviour)
# ----------------------------------------------------------------------
def _reference_build_contexts(network: Network) -> dict[Hashable, NodeContext]:
    """The seed ``build_contexts``: recompute everything per node.

    Kept as the equivalence-test oracle and the benchmark baseline; it
    reproduces the seed's cost profile (a full ``max_degree`` /
    ``max_identifier`` scan and a neighbour sort per node, i.e.
    ``O(n · m)`` overall) on the raw :mod:`networkx` graph.
    """
    graph = network.graph
    identifiers = network.identifiers
    contexts: dict[Hashable, NodeContext] = {}
    for node in graph.nodes():
        neighbors = tuple(
            sorted(graph.neighbors(node), key=lambda v: identifiers[v])
        )
        contexts[node] = NodeContext(
            node=node,
            node_id=identifiers[node],
            degree=graph.degree(node),
            neighbors=neighbors,
            neighbor_ids={v: identifiers[v] for v in neighbors},
            num_nodes=graph.number_of_nodes(),
            max_degree=max((d for _, d in graph.degree()), default=0),
            max_identifier=max(identifiers.values(), default=1),
            node_input=network.node_inputs.get(node),
            shared=dict(network.shared),
        )
    return contexts


def run_synchronous_reference(
    network: Network,
    algorithm: SynchronousAlgorithm,
    max_rounds: int | None = None,
) -> RunResult:
    """The seed engine: poll every node every round, re-scan termination.

    This is the pre-CSR implementation preserved for the equivalence
    tests (``tests/test_engine_equivalence.py``) and as the baseline of
    ``benchmarks/bench_engine.py``; production callers should use
    :func:`run_synchronous`.
    """
    contexts = _reference_build_contexts(network)
    states: dict[Hashable, Any] = {
        node: algorithm.initial_state(ctx) for node, ctx in contexts.items()
    }
    if max_rounds is None:
        max_rounds = 4 * network.num_nodes + 64

    rounds = 0
    messages_sent = 0
    while not all(
        algorithm.has_terminated(states[node], contexts[node]) for node in contexts
    ):
        if rounds >= max_rounds:
            raise RuntimeError(
                f"{algorithm.name} exceeded the round cap of {max_rounds} rounds"
            )
        rounds += 1
        inboxes: dict[Hashable, dict[Hashable, Any]] = {node: {} for node in contexts}
        for node, ctx in contexts.items():
            outgoing = algorithm.messages(states[node], ctx)
            for neighbor, message in outgoing.items():
                if neighbor not in ctx.neighbor_ids:
                    raise ValueError(
                        f"{algorithm.name}: node {node!r} attempted to message "
                        f"non-neighbor {neighbor!r}"
                    )
                inboxes[neighbor][node] = message
                messages_sent += 1
        for node, ctx in contexts.items():
            states[node] = algorithm.transition(states[node], inboxes[node], ctx)

    outputs = {node: algorithm.output(states[node], ctx) for node, ctx in contexts.items()}
    return _report_to_meters(RunResult(
        algorithm=algorithm.name,
        rounds=rounds,
        outputs=outputs,
        messages_sent=messages_sent,
    ))
