"""The synchronous round-by-round simulator.

Each round: every node produces its outgoing messages from its current
state, all messages are delivered, and every node computes its new state
from its inbox.  The run ends when every node has terminated; the number of
executed rounds is the algorithm's round complexity on this instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.local.algorithm import NodeContext, SynchronousAlgorithm
from repro.local.network import Network


@dataclass
class RunResult:
    """Result of simulating a synchronous algorithm on a network."""

    algorithm: str
    rounds: int
    outputs: dict[Hashable, Any]
    messages_sent: int = 0
    statistics: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunResult(algorithm={self.algorithm!r}, rounds={self.rounds}, "
            f"nodes={len(self.outputs)}, messages={self.messages_sent})"
        )


def build_contexts(network: Network) -> dict[Hashable, NodeContext]:
    """Build the initial knowledge of every node of ``network``."""
    contexts: dict[Hashable, NodeContext] = {}
    for node in network.nodes():
        neighbors = tuple(network.neighbors(node))
        contexts[node] = NodeContext(
            node=node,
            node_id=network.identifiers[node],
            degree=network.degree(node),
            neighbors=neighbors,
            neighbor_ids={v: network.identifiers[v] for v in neighbors},
            num_nodes=network.num_nodes,
            max_degree=network.max_degree,
            max_identifier=network.max_identifier,
            node_input=network.node_inputs.get(node),
            shared=dict(network.shared),
        )
    return contexts


def run_synchronous(
    network: Network,
    algorithm: SynchronousAlgorithm,
    max_rounds: int | None = None,
) -> RunResult:
    """Simulate ``algorithm`` on ``network`` until every node terminates.

    Parameters
    ----------
    max_rounds:
        Safety cap; exceeding it raises ``RuntimeError`` (a deterministic
        LOCAL algorithm that does not terminate is a bug, not a feature).
        Defaults to ``4 * n + 64`` which is far above every algorithm in
        this repository.
    """
    contexts = build_contexts(network)
    states: dict[Hashable, Any] = {
        node: algorithm.initial_state(ctx) for node, ctx in contexts.items()
    }
    if max_rounds is None:
        max_rounds = 4 * network.num_nodes + 64

    rounds = 0
    messages_sent = 0
    while not all(
        algorithm.has_terminated(states[node], contexts[node]) for node in contexts
    ):
        if rounds >= max_rounds:
            raise RuntimeError(
                f"{algorithm.name} exceeded the round cap of {max_rounds} rounds"
            )
        rounds += 1
        # send phase
        inboxes: dict[Hashable, dict[Hashable, Any]] = {node: {} for node in contexts}
        for node, ctx in contexts.items():
            outgoing = algorithm.messages(states[node], ctx)
            for neighbor, message in outgoing.items():
                if neighbor not in ctx.neighbor_ids:
                    raise ValueError(
                        f"{algorithm.name}: node {node!r} attempted to message "
                        f"non-neighbor {neighbor!r}"
                    )
                inboxes[neighbor][node] = message
                messages_sent += 1
        # receive phase
        for node, ctx in contexts.items():
            states[node] = algorithm.transition(states[node], inboxes[node], ctx)

    outputs = {node: algorithm.output(states[node], ctx) for node, ctx in contexts.items()}
    return RunResult(
        algorithm=algorithm.name,
        rounds=rounds,
        outputs=outputs,
        messages_sent=messages_sent,
    )
