"""A synchronous simulator for the LOCAL model of distributed computing.

The LOCAL model (Definition 5 of the paper): the network is a graph whose
nodes are computational units with unique identifiers; computation proceeds
in synchronous rounds, and in every round each node may send an arbitrarily
large message to each neighbour, receive its neighbours' messages and
perform arbitrary local computation.  The complexity of an algorithm is the
number of rounds until every node has produced its output.

This package provides:

* :class:`Network` — the communication graph with identifier assignment,
  optional per-node inputs and a one-time CSR adjacency index,
* :class:`CSRAdjacency` — the flat int-indexed adjacency layout shared
  with the decomposition hot loops,
* :class:`SynchronousAlgorithm` — the per-node state machine interface,
* :func:`run_synchronous` — the active-set round-by-round simulator,
* :func:`run_vectorized` — the array engine executing whole-network
  rounds for kernel-capable baselines on a pluggable
  :class:`ArrayBackend`, bit-identical to the interpreted engine
  (:mod:`repro.local.vectorized`, :mod:`repro.local.array_backend`),
* :class:`EnginePolicy` / :func:`select_engine` — ambient engine policy
  (``auto`` / ``interpreted`` / ``vectorized``, plus an array-backend
  pin) and per-algorithm kernel dispatch via :class:`KernelRegistry`,
* :func:`run_synchronous_reference` — the seed engine, kept as the
  equivalence oracle and benchmark baseline, and
* :class:`RoundLedger` — explicit round accounting for the orchestrated
  phases of the transformation (decomposition iterations, component
  gathering) that are not run through the message-passing engine.
"""

from repro.local.csr import CSRAdjacency
from repro.local.network import Network
from repro.local.algorithm import NodeContext, SynchronousAlgorithm
from repro.local.array_backend import (
    ArrayBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.local.engine import (
    ENGINE_MODES,
    EnginePolicy,
    EngineScope,
    current_engine_mode,
    current_policy,
)
from repro.local.simulator import (
    MessageMeter,
    RunResult,
    run_synchronous,
    run_synchronous_reference,
)
from repro.local.vectorized import (
    EngineUnavailable,
    KernelRegistry,
    KernelSpec,
    KERNELS,
    active_backend,
    numpy_available,
    register_kernel,
    run_vectorized,
    select_engine,
    supports_vectorized,
    use_vectorized,
)
from repro.local.rounds import RoundLedger

__all__ = [
    "CSRAdjacency",
    "Network",
    "NodeContext",
    "SynchronousAlgorithm",
    "ArrayBackend",
    "MessageMeter",
    "RunResult",
    "ENGINE_MODES",
    "EnginePolicy",
    "EngineScope",
    "EngineUnavailable",
    "KernelRegistry",
    "KernelSpec",
    "KERNELS",
    "active_backend",
    "available_backends",
    "current_engine_mode",
    "current_policy",
    "get_backend",
    "numpy_available",
    "register_backend",
    "register_kernel",
    "run_synchronous",
    "run_synchronous_reference",
    "run_vectorized",
    "select_engine",
    "supports_vectorized",
    "use_vectorized",
    "RoundLedger",
]
