"""The communication graph of the LOCAL model.

A :class:`Network` wraps a :mod:`networkx` graph and fixes the information
every node starts with: a globally unique identifier from ``{1, ..., n^c}``,
the number of nodes ``n``, the maximum degree ``Δ``, and optional problem-
specific per-node inputs (for example the parent pointer used by the forest
colouring subroutine).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Mapping

import networkx as nx


class Network:
    """A LOCAL-model network over an undirected simple graph.

    Parameters
    ----------
    graph:
        The communication graph.
    identifiers:
        Optional mapping from node to its unique integer identifier.  When
        omitted, nodes are numbered ``1 .. n`` in sorted order of their
        representation, which yields a deterministic (adversary-friendly,
        but valid) identifier assignment.
    node_inputs:
        Optional per-node inputs available to the node at the start of the
        computation.
    shared:
        Globally known quantities beyond ``n`` and ``Δ`` (for instance an
        arboricity bound), visible to every node.
    """

    def __init__(
        self,
        graph: nx.Graph,
        identifiers: Mapping[Hashable, int] | None = None,
        node_inputs: Mapping[Hashable, Any] | None = None,
        shared: Mapping[str, Any] | None = None,
    ) -> None:
        if graph.is_directed() or graph.is_multigraph():
            raise ValueError("the LOCAL network must be a simple undirected graph")
        self.graph = graph
        self._nodes = list(graph.nodes())
        if identifiers is None:
            ordered = sorted(self._nodes, key=repr)
            identifiers = {node: index + 1 for index, node in enumerate(ordered)}
        self.identifiers: dict[Hashable, int] = dict(identifiers)
        self._validate_identifiers()
        self.node_inputs: dict[Hashable, Any] = dict(node_inputs or {})
        self.shared: dict[str, Any] = dict(shared or {})

    def _validate_identifiers(self) -> None:
        missing = [v for v in self._nodes if v not in self.identifiers]
        if missing:
            raise ValueError(f"nodes without identifiers: {missing[:5]!r}")
        values = list(self.identifiers[v] for v in self._nodes)
        if len(set(values)) != len(values):
            raise ValueError("identifiers must be globally unique")
        if any(not isinstance(x, int) or x < 1 for x in values):
            raise ValueError("identifiers must be positive integers")

    # ------------------------------------------------------------------
    # globally known quantities
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """The number of nodes ``n`` (known to every node)."""
        return len(self._nodes)

    @property
    def max_degree(self) -> int:
        """The maximum degree ``Δ`` (known to every node)."""
        return max((d for _, d in self.graph.degree()), default=0)

    @property
    def max_identifier(self) -> int:
        """The largest identifier in use (an upper bound on the ID space)."""
        return max(self.identifiers.values(), default=1)

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def nodes(self) -> Iterable[Hashable]:
        """The network's nodes."""
        return list(self._nodes)

    def neighbors(self, node: Hashable) -> list:
        """The neighbours of ``node`` in a deterministic order."""
        return sorted(self.graph.neighbors(node), key=lambda v: self.identifiers[v])

    def degree(self, node: Hashable) -> int:
        """The degree of ``node``."""
        return self.graph.degree(node)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Network(n={self.num_nodes}, m={self.graph.number_of_edges()}, "
            f"max_degree={self.max_degree})"
        )
