"""The communication graph of the LOCAL model.

A :class:`Network` wraps a :mod:`networkx` graph and fixes the information
every node starts with: a globally unique identifier from ``{1, ..., n^c}``,
the number of nodes ``n``, the maximum degree ``Δ``, and optional problem-
specific per-node inputs (for example the parent pointer used by the forest
colouring subroutine).

Data layout
-----------
A network is immutable after construction, so ``__init__`` performs a
single indexing pass and every subsequent topology query is served from
caches:

* ``max_degree`` and ``max_identifier`` are plain attributes computed
  once (the seed implementation recomputed both with a full scan on
  every access, which made context construction quadratic);
* the adjacency is compiled into a CSR-style flat layout
  (:class:`repro.local.csr.CSRAdjacency`): an int-indexed node table plus
  ``offsets``/``targets`` arrays whose neighbour slices are already
  sorted by identifier.  Building it visits sources in increasing
  identifier order, so no per-node sort is needed — ``O(n log n + m)``
  total instead of the seed's ``O(m log Δ)`` sort per ``neighbors()``
  call;
* ``nodes()`` returns one cached tuple and ``neighbors()`` memoizes the
  identifier-sorted neighbour tuple of each node.

The wrapped ``graph`` must not be mutated after the network is built; the
caches would go stale silently.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Mapping

import networkx as nx

from repro.local.csr import CSRAdjacency


class Network:
    """A LOCAL-model network over an undirected simple graph.

    Parameters
    ----------
    graph:
        The communication graph.
    identifiers:
        Optional mapping from node to its unique integer identifier.  When
        omitted, nodes are numbered ``1 .. n`` in sorted order of their
        representation, which yields a deterministic (adversary-friendly,
        but valid) identifier assignment.
    node_inputs:
        Optional per-node inputs available to the node at the start of the
        computation.
    shared:
        Globally known quantities beyond ``n`` and ``Δ`` (for instance an
        arboricity bound), visible to every node.
    """

    def __init__(
        self,
        graph: nx.Graph,
        identifiers: Mapping[Hashable, int] | None = None,
        node_inputs: Mapping[Hashable, Any] | None = None,
        shared: Mapping[str, Any] | None = None,
    ) -> None:
        if graph.is_directed() or graph.is_multigraph():
            raise ValueError("the LOCAL network must be a simple undirected graph")
        if nx.number_of_selfloops(graph):
            # The CSR index counts a self-loop once towards the degree while
            # the reference engine's ``graph.degree`` counts it twice, so the
            # two engines would disagree on Δ; self-loops carry no meaning in
            # the LOCAL message model anyway, so reject them outright.
            raise ValueError("the LOCAL network must not contain self-loops")
        self.graph = graph
        self._nodes: tuple = tuple(graph.nodes())
        if identifiers is None:
            ordered = sorted(self._nodes, key=repr)
            identifiers = {node: index + 1 for index, node in enumerate(ordered)}
        self.identifiers: dict[Hashable, int] = dict(identifiers)
        self._validate_identifiers()
        self.node_inputs: dict[Hashable, Any] = dict(node_inputs or {})
        self.shared: dict[str, Any] = dict(shared or {})
        # One-time indexing pass: identifier-sorted CSR adjacency plus the
        # globally known scalars.
        ids = self.identifiers
        self.csr: CSRAdjacency = CSRAdjacency.from_graph(
            graph, order_key=ids.__getitem__
        )
        offsets = self.csr.offsets
        self.max_degree: int = max(
            (offsets[i + 1] - offsets[i] for i in range(len(self._nodes))), default=0
        )
        self.max_identifier: int = max(ids.values(), default=1)
        self._neighbor_cache: list[tuple | None] = [None] * len(self._nodes)

    def _validate_identifiers(self) -> None:
        missing = [v for v in self._nodes if v not in self.identifiers]
        if missing:
            raise ValueError(f"nodes without identifiers: {missing[:5]!r}")
        values = list(self.identifiers[v] for v in self._nodes)
        if len(set(values)) != len(values):
            raise ValueError("identifiers must be globally unique")
        if any(not isinstance(x, int) or x < 1 for x in values):
            raise ValueError("identifiers must be positive integers")

    # ------------------------------------------------------------------
    # globally known quantities
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """The number of nodes ``n`` (known to every node)."""
        return len(self._nodes)

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def nodes(self) -> Iterable[Hashable]:
        """The network's nodes (a cached tuple; do not mutate)."""
        return self._nodes

    def neighbors(self, node: Hashable) -> tuple:
        """The neighbours of ``node``, sorted by identifier (memoized)."""
        i = self.csr.index[node]
        cached = self._neighbor_cache[i]
        if cached is None:
            nodes = self.csr.nodes
            cached = tuple(nodes[j] for j in self.csr.neighbor_slice(i))
            self._neighbor_cache[i] = cached
        return cached

    def degree(self, node: Hashable) -> int:
        """The degree of ``node``."""
        return self.csr.degree_of(self.csr.index[node])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Network(n={self.num_nodes}, m={self.graph.number_of_edges()}, "
            f"max_degree={self.max_degree})"
        )
