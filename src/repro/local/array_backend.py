"""Pluggable array-namespace backends for the vectorized engine.

The vectorized engine used to be written directly against NumPy: every
kernel body called ``np.`` functions, and "is the vectorized engine
available?" meant "did ``import numpy`` succeed?".  This module lifts
that dependency into an explicit :class:`ArrayBackend` protocol — the
small set of array-namespace operations the kernels and decomposition
peels actually use — plus a name-keyed registry so an alternative
backend (a GPU array library, or any ``array_api``-conformant
namespace wrapped in an adapter) slots in without touching kernel
code.

Only :class:`NumpyBackend` ships today.  Kernels receive the backend
as their first argument and must route every namespace-level call
(``asarray``, ``where``, ``segment_sum``, …) through it; plain array
*methods* and operators (``%``, ``@``, ``>>``, fancy indexing,
``.any()``, ``.tolist()``) are part of the array-api surface and fine
to use directly.

:func:`numpy_available` here is the single source of truth for
engine availability — ``repro.local.vectorized.numpy_available`` and
the runner's degrade-to-interpreted logic all delegate to it at call
time, so tests can monkeypatch this one function to simulate a
numpy-free interpreter.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

__all__ = [
    "DEFAULT_BACKEND",
    "ArrayBackend",
    "NumpyBackend",
    "available_backends",
    "get_backend",
    "numpy_available",
    "register_backend",
]

#: The backend every kernel runs on unless a policy names another one.
DEFAULT_BACKEND = "numpy"


@runtime_checkable
class ArrayBackend(Protocol):
    """The array-namespace surface the vectorized kernels consume.

    Implementations expose integer/boolean dtypes as attributes and the
    namespace-level constructors and reductions below.  Arrays returned
    by one method must be accepted by the others (no mixing backends
    within a kernel).
    """

    name: str
    int64: Any
    bool_: Any

    def asarray(self, values: Any, dtype: Any = None) -> Any: ...

    def fromiter(self, values: Any, dtype: Any, count: int = -1) -> Any: ...

    def zeros(self, shape: Any, dtype: Any = None) -> Any: ...

    def empty(self, shape: Any, dtype: Any = None) -> Any: ...

    def full(self, shape: Any, fill_value: Any, dtype: Any = None) -> Any: ...

    def arange(self, stop: int, dtype: Any = None) -> Any: ...

    def where(self, condition: Any, x: Any, y: Any) -> Any: ...

    def cumsum(self, values: Any, dtype: Any = None) -> Any: ...

    def segment_sum(self, values: Any, indptr: Any) -> Any: ...

    def bitwise_count(self, values: Any) -> Any: ...

    def gather(self, values: Any, indices: Any) -> Any: ...

    def flatnonzero(self, mask: Any) -> Any: ...


class NumpyBackend:
    """The reference :class:`ArrayBackend` over NumPy.

    Constructing it imports numpy; callers that must tolerate a
    numpy-free interpreter go through :func:`get_backend` /
    :func:`numpy_available` instead of instantiating directly.
    """

    name = "numpy"

    def __init__(self) -> None:
        import numpy

        self._np = numpy
        self.int64 = numpy.int64
        self.bool_ = numpy.bool_

    def asarray(self, values: Any, dtype: Any = None) -> Any:
        return self._np.asarray(values, dtype=dtype)

    def fromiter(self, values: Any, dtype: Any, count: int = -1) -> Any:
        return self._np.fromiter(values, dtype=dtype, count=count)

    def zeros(self, shape: Any, dtype: Any = None) -> Any:
        return self._np.zeros(shape, dtype=dtype)

    def empty(self, shape: Any, dtype: Any = None) -> Any:
        return self._np.empty(shape, dtype=dtype)

    def full(self, shape: Any, fill_value: Any, dtype: Any = None) -> Any:
        return self._np.full(shape, fill_value, dtype=dtype)

    def arange(self, stop: int, dtype: Any = None) -> Any:
        return self._np.arange(stop, dtype=dtype)

    def where(self, condition: Any, x: Any, y: Any) -> Any:
        return self._np.where(condition, x, y)

    def cumsum(self, values: Any, dtype: Any = None) -> Any:
        return self._np.cumsum(values, dtype=dtype)

    def segment_sum(self, values: Any, indptr: Any) -> Any:
        """Sum ``values`` over CSR segments delimited by ``indptr``.

        Implemented with an exclusive prefix sum rather than
        ``add.reduceat`` — ``reduceat`` misreads empty segments (it
        returns the *next* element instead of zero), and empty
        neighbourhoods are routine once nodes start dropping out.
        """
        np = self._np
        prefix = np.zeros(len(values) + 1, dtype=np.int64)
        np.cumsum(values, dtype=np.int64, out=prefix[1:])
        return prefix[indptr[1:]] - prefix[indptr[:-1]]

    def bitwise_count(self, values: Any) -> Any:
        np = self._np
        if hasattr(np, "bitwise_count"):  # numpy >= 2.0
            return np.bitwise_count(values)
        # Portable popcount for numpy 1.x: unpack the little-endian
        # bytes of each int64 and sum bits per element.
        flat = np.ascontiguousarray(values, dtype=np.int64)
        as_bytes = flat.view(np.uint8).reshape(flat.shape + (8,))
        return np.unpackbits(as_bytes, axis=-1).sum(axis=-1).astype(flat.dtype)

    def gather(self, values: Any, indices: Any) -> Any:
        return self._np.take(values, indices)

    def flatnonzero(self, mask: Any) -> Any:
        return self._np.flatnonzero(mask)


_BACKENDS: dict[str, ArrayBackend] = {}


def register_backend(backend: ArrayBackend, *, replace: bool = False) -> ArrayBackend:
    """Register ``backend`` under its :attr:`~ArrayBackend.name`.

    Refuses to silently shadow an existing registration unless
    ``replace=True`` — two backends answering to the same name would
    make ``engine`` provenance in results ambiguous.
    """
    existing = _BACKENDS.get(backend.name)
    if existing is not None and existing is not backend and not replace:
        raise ValueError(
            f"array backend {backend.name!r} is already registered "
            f"({type(existing).__name__}); pass replace=True to swap in "
            f"{type(backend).__name__}"
        )
    _BACKENDS[backend.name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def get_backend(name: str | None = None) -> ArrayBackend:
    """The backend registered under ``name`` (default :data:`DEFAULT_BACKEND`)."""
    key = name or DEFAULT_BACKEND
    try:
        return _BACKENDS[key]
    except KeyError:
        raise KeyError(
            f"no array backend named {key!r} is registered "
            f"(available: {', '.join(available_backends()) or 'none'})"
        ) from None


def numpy_available() -> bool:
    """Whether the default (NumPy) backend is usable.

    The single monkeypatch point for simulating a numpy-free
    interpreter: every availability check in the engine stack funnels
    through this function at call time.
    """
    return DEFAULT_BACKEND in _BACKENDS


try:
    register_backend(NumpyBackend())
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    pass
