"""A CSR-style (compressed sparse row) adjacency index for simulation hot loops.

:mod:`networkx` graphs are convenient to build and mutate, but every
traversal pays for hashing arbitrary node objects and walking nested
dictionaries.  The simulation engine and the decomposition processes only
ever *read* the topology, so they index it once into three flat arrays:

* ``nodes``     — the original node objects, ``nodes[i]`` is node ``i``;
* ``offsets``   — ``offsets[i] : offsets[i + 1]`` is the slice of
  ``targets`` holding node ``i``'s neighbours (so
  ``offsets[i + 1] - offsets[i]`` is its degree);
* ``targets``   — neighbour *indices* (ints), not node objects.

All inner loops then run on small ints and list slices.  When an
``order_key`` is supplied (the simulator passes the identifier
assignment), the build visits sources in increasing key order, so every
neighbour slice comes out sorted by that key without any per-node sort —
the whole build is ``O(n log n + m)``.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

import networkx as nx


class CSRAdjacency:
    """An immutable int-indexed adjacency built once from a graph."""

    __slots__ = ("nodes", "index", "offsets", "targets", "_array_cache")

    def __init__(
        self,
        nodes: Sequence[Hashable],
        index: dict,
        offsets: list[int],
        targets: list[int],
    ) -> None:
        self.nodes = tuple(nodes)
        self.index = index
        self.offsets = offsets
        self.targets = targets
        self._array_cache = None

    @classmethod
    def from_graph(
        cls,
        graph: nx.Graph,
        order_key: Callable[[Hashable], int] | None = None,
    ) -> "CSRAdjacency":
        """Index ``graph`` into flat arrays.

        Parameters
        ----------
        order_key:
            Optional total order on nodes.  When given, every node's
            neighbour slice is sorted by ``order_key`` (exploiting that
            appending targets in source-key order leaves each adjacency
            list sorted, so no per-node sort is needed).
        """
        nodes = tuple(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        adjacency: list[list[int]] = [[] for _ in range(n)]
        if order_key is None:
            order = range(n)
        else:
            order = sorted(range(n), key=lambda i: order_key(nodes[i]))
        graph_adj = graph.adj
        for i in order:
            for neighbor in graph_adj[nodes[i]]:
                adjacency[index[neighbor]].append(i)
        offsets = [0] * (n + 1)
        total = 0
        for i in range(n):
            total += len(adjacency[i])
            offsets[i + 1] = total
        targets: list[int] = []
        for neighbors in adjacency:
            targets.extend(neighbors)
        return cls(nodes, index, offsets, targets)

    # ------------------------------------------------------------------
    # reads (all O(1) or O(degree))
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def degree_of(self, i: int) -> int:
        """Degree of node index ``i``."""
        return self.offsets[i + 1] - self.offsets[i]

    def neighbor_slice(self, i: int) -> list[int]:
        """The neighbour indices of node index ``i`` (a fresh list slice)."""
        return self.targets[self.offsets[i] : self.offsets[i + 1]]

    def degrees(self) -> list[int]:
        """All degrees, indexed like ``nodes``."""
        offsets = self.offsets
        return [offsets[i + 1] - offsets[i] for i in range(len(self.nodes))]

    def array_layout(self):
        """The adjacency as NumPy arrays ``(indptr, indices, edge_sources)``.

        ``indptr``/``indices`` mirror ``offsets``/``targets``;
        ``edge_sources[e]`` is the source index of directed edge slot ``e``
        (i.e. ``indices[e]`` is a neighbour of ``edge_sources[e]``).  Built
        on first use and cached — the adjacency is immutable — so repeated
        vectorized rounds pay the list-to-array conversion once.  Requires
        numpy; callers gate on :func:`repro.local.vectorized.numpy_available`.
        """
        if self._array_cache is None:
            import numpy

            indptr = numpy.asarray(self.offsets, dtype=numpy.int64)
            indices = numpy.asarray(self.targets, dtype=numpy.int64)
            degrees = indptr[1:] - indptr[:-1]
            edge_sources = numpy.repeat(
                numpy.arange(len(self.nodes), dtype=numpy.int64), degrees
            )
            self._array_cache = (indptr, indices, edge_sources)
        return self._array_cache

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRAdjacency(n={len(self.nodes)}, m={len(self.targets) // 2})"
