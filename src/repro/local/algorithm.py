"""The per-node state machine interface for synchronous LOCAL algorithms.

A :class:`SynchronousAlgorithm` describes what a single node does: how it
initialises its state, which message it sends to each neighbour at the
start of a round, how it updates its state from the received messages, when
it terminates, and what it outputs.  The same algorithm object is shared by
all nodes (it holds no per-node state); the simulator keeps one state value
per node and drives the rounds.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Hashable, Mapping


@dataclass(frozen=True)
class NodeContext:
    """Everything a node knows before the first round.

    In the LOCAL model a node initially knows its own identifier, its
    degree, ``n`` and ``Δ``; the identifiers of its neighbours can be
    learnt in a single round, so (as is standard) they are made available
    up front.
    """

    node: Hashable
    node_id: int
    degree: int
    neighbors: tuple
    neighbor_ids: Mapping[Hashable, int]
    num_nodes: int
    max_degree: int
    max_identifier: int
    node_input: Any = None
    shared: Mapping[str, Any] = field(default_factory=dict)


class SynchronousAlgorithm(ABC):
    """A deterministic synchronous LOCAL algorithm, described per node."""

    #: Human-readable name, used in run reports.
    name: str = "abstract"

    @abstractmethod
    def initial_state(self, ctx: NodeContext) -> Any:
        """The node's state before round 1."""

    @abstractmethod
    def messages(self, state: Any, ctx: NodeContext) -> dict:
        """Messages to send this round: a mapping ``neighbor -> message``.

        Neighbours not present in the mapping receive no message.
        """

    @abstractmethod
    def transition(self, state: Any, inbox: dict, ctx: NodeContext) -> Any:
        """The node's new state after receiving ``inbox`` (``neighbor -> message``)."""

    @abstractmethod
    def has_terminated(self, state: Any, ctx: NodeContext) -> bool:
        """Whether the node has decided on its output."""

    @abstractmethod
    def output(self, state: Any, ctx: NodeContext) -> Any:
        """The node's output, read once every node has terminated."""
