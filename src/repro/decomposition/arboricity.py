"""The Decomposition process for graphs of bounded arboricity (Algorithm 3).

The process peels a graph of arboricity at most ``a`` with the modified
compress operation ``Compress(G, b, k)``: a node is marked when its degree
is at most ``k`` and at most ``b`` of its neighbours have degree greater
than ``k``.  With ``b = 2a`` and ``k ≥ 5a`` the number of remaining nodes
shrinks by a factor ``k / 4a`` per iteration, so all nodes are marked
within ``⌈10·log_{k/a} n⌉ + 1`` iterations (Lemma 13).

From the resulting layer order the edges are split into

* **typical** edges, which induce a graph of maximum degree at most ``k``
  (Lemma 14), and
* **atypical** edges — edges whose higher endpoint still had degree greater
  than ``k`` when the lower endpoint was marked; every node has at most
  ``b`` of them towards higher neighbours.

The atypical edges are partitioned into ``b`` forests ``F_i`` (each node
keeps at most one higher neighbour per forest), each forest is vertex
3-coloured in ``O(log* n)`` rounds with the Cole–Vishkin subroutine, and
splitting each forest by the colour of the higher endpoint yields the star
collections ``F_{i,j}`` whose connected components are stars centred at the
higher endpoint — ready to be solved in a constant number of rounds each by
Algorithm 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable

import networkx as nx

from repro.local.csr import CSRAdjacency
from repro.local.engine import note_engine_use
from repro.semigraph.builders import edge_id_for

#: Rounds charged per peeling iteration (the compress test inspects the
#: 2-hop degree profile, i.e. two rounds).
ROUNDS_PER_ITERATION = 2
#: Constant rounds charged for the local edge classification and the
#: colouring of atypical edges at their lower endpoints.
CLASSIFICATION_ROUNDS = 2


@dataclass
class ArboricityDecomposition:
    """The output of Algorithm 3 plus the derived edge structures."""

    graph: nx.Graph
    arboricity: int
    k: int
    b: int
    layers: list[frozenset]
    node_iteration: dict[Hashable, int]
    identifiers: dict[Hashable, int]
    iterations: int
    typical_edges: set
    atypical_edges: set
    forests: list[set]
    forest_colorings: list[dict]
    star_collections: dict[tuple[int, int], set]
    forest_coloring_rounds: int
    rounds: int
    theoretical_iteration_bound: int
    degree_snapshots: list[dict] = field(default_factory=list, repr=False)

    # ------------------------------------------------------------------
    # the total order on nodes
    # ------------------------------------------------------------------
    def order_key(self, node: Hashable) -> tuple[int, int]:
        """Sort key realising the lower-to-higher total order on nodes."""
        return (self.node_iteration[node], self.identifiers[node])

    def is_higher(self, u: Hashable, v: Hashable) -> bool:
        """Whether ``u`` is higher than ``v``."""
        return self.order_key(u) > self.order_key(v)

    def lower_endpoint(self, u: Hashable, v: Hashable) -> Hashable:
        """The lower endpoint of the edge ``{u, v}``."""
        return v if self.is_higher(u, v) else u

    def higher_endpoint(self, u: Hashable, v: Hashable) -> Hashable:
        """The higher endpoint of the edge ``{u, v}``."""
        return u if self.is_higher(u, v) else v

    # ------------------------------------------------------------------
    # Lemma 13 / Lemma 14 as checkable properties
    # ------------------------------------------------------------------
    def theoretical_layer_bound(self) -> int:
        """The Lemma 13 bound ``⌈10·log_{k/a} n⌉ + 1`` on the number of iterations."""
        return self.theoretical_iteration_bound

    def typical_subgraph(self) -> nx.Graph:
        """The graph induced by typical edges (Lemma 14 subject)."""
        graph = nx.Graph()
        graph.add_nodes_from(self.graph.nodes())
        graph.add_edges_from(self.typical_edges)
        return graph

    def typical_max_degree(self) -> int:
        """Maximum degree of the typical-edge subgraph (must be at most ``k``)."""
        graph = self.typical_subgraph()
        return max((d for _, d in graph.degree()), default=0)

    def max_atypical_per_lower_endpoint(self) -> int:
        """Maximum number of atypical edges sharing a lower endpoint (≤ b)."""
        counts: dict[Hashable, int] = {}
        for u, v in self.atypical_edges:
            lower = self.lower_endpoint(u, v)
            counts[lower] = counts.get(lower, 0) + 1
        return max(counts.values(), default=0)

    def star_components_are_stars(self) -> bool:
        """Whether every component of every ``G[F_{i,j}]`` is a star.

        A star is a tree of diameter at most 2 in which at most one node
        has degree greater than 1.
        """
        for edges in self.star_collections.values():
            subgraph = nx.Graph()
            subgraph.add_edges_from(edges)
            for component in nx.connected_components(subgraph):
                component_graph = subgraph.subgraph(component)
                centers = [
                    node for node in component_graph if component_graph.degree(node) > 1
                ]
                if len(centers) > 1:
                    return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArboricityDecomposition(n={self.graph.number_of_nodes()}, "
            f"a={self.arboricity}, k={self.k}, b={self.b}, "
            f"iterations={self.iterations}, typical={len(self.typical_edges)}, "
            f"atypical={len(self.atypical_edges)})"
        )


def arboricity_decomposition(
    graph: nx.Graph,
    arboricity: int,
    k: int,
    b: int | None = None,
    identifiers: dict[Hashable, int] | None = None,
    strict_iteration_bound: bool = False,
) -> ArboricityDecomposition:
    """Run Algorithm 3 on ``graph`` and derive the edge structures of Section 4.

    Parameters
    ----------
    graph:
        The input graph; its arboricity should be at most ``arboricity``.
    arboricity:
        The arboricity bound ``a`` known to all nodes.
    k:
        The degree threshold of the compress operation.  Lemma 13 requires
        ``k ≥ 5a``; smaller values are accepted (for ablations) but may
        need more iterations.
    b:
        The high-degree-neighbour budget; defaults to ``2a`` as in Lemma 13.
    strict_iteration_bound:
        When true, raise if the peeling needs more iterations than the
        Lemma 13 bound.

    Engine choice is ambient (:class:`~repro.local.EnginePolicy`): under
    ``auto``/``vectorized`` the peeling loop runs as whole-graph array
    operations on the policy's backend (identical layers, snapshots,
    iterations and errors).
    """
    if arboricity < 1:
        raise ValueError("the arboricity bound must be at least 1")
    if b is None:
        b = 2 * arboricity
    if b <= arboricity:
        raise ValueError("Algorithm 3 requires b > a")
    if k < 2:
        raise ValueError("the degree threshold k must be at least 2")

    if identifiers is None:
        ordered = sorted(graph.nodes(), key=repr)
        identifiers = {node: index + 1 for index, node in enumerate(ordered)}

    n = graph.number_of_nodes()
    if n == 0:
        return ArboricityDecomposition(
            graph, arboricity, k, b, [], {}, {}, 0, set(), set(), [], [], {}, 0, 0, 1, []
        )

    ratio = max(k / arboricity, 1.25)
    theoretical_bound = math.ceil(10 * math.log(max(n, 2)) / math.log(ratio)) + 1
    safety_cap = max(4 * theoretical_bound + 8, 64)

    # Index the topology once into a CSR layout; the peeling loop then
    # runs entirely on int indices and flat arrays instead of re-hashing
    # node objects through dict-of-set adjacencies every iteration.
    csr = CSRAdjacency.from_graph(graph)

    from repro.local.vectorized import active_backend

    xp = active_backend()
    if xp is not None:
        layers, node_iteration, degree_snapshots, iteration = _peel_vectorized(
            xp,
            csr,
            k,
            b,
            n,
            arboricity,
            safety_cap,
            theoretical_bound,
            strict_iteration_bound,
        )
        note_engine_use(
            "vectorized",
            kernel="arboricity-peel",
            backend=xp.name,
            rounds=ROUNDS_PER_ITERATION * iteration,
        )
        return _finish_decomposition(
            graph,
            arboricity,
            k,
            b,
            layers,
            node_iteration,
            identifiers,
            iteration,
            theoretical_bound,
            degree_snapshots,
        )

    node_of = csr.nodes
    offsets, targets = csr.offsets, csr.targets
    remaining = csr.degrees()
    alive = [True] * n
    alive_indices = list(range(n))

    layers: list[frozenset] = []
    node_iteration: dict[Hashable, int] = {}
    degree_snapshots: list[dict] = []
    iteration = 0

    while alive_indices:
        iteration += 1
        if iteration > safety_cap:
            raise RuntimeError(
                f"Algorithm 3 did not terminate within {safety_cap} iterations "
                f"(n={n}, a={arboricity}, b={b}, k={k})"
            )
        if strict_iteration_bound and iteration > theoretical_bound:
            raise RuntimeError(
                f"Algorithm 3 exceeded the Lemma 13 bound of {theoretical_bound} "
                f"iterations (n={n}, a={arboricity}, b={b}, k={k})"
            )
        degree_snapshots.append({node_of[i]: remaining[i] for i in alive_indices})
        marked_indices = []
        for i in alive_indices:
            if remaining[i] > k:
                continue
            high_neighbors = 0
            for j in targets[offsets[i] : offsets[i + 1]]:
                if alive[j] and remaining[j] > k:
                    high_neighbors += 1
                    if high_neighbors > b:
                        break
            if high_neighbors <= b:
                marked_indices.append(i)
        if not marked_indices:
            raise RuntimeError(
                "Algorithm 3 made no progress; the arboricity bound or the "
                "parameters (b, k) are inconsistent with the input graph"
            )
        for i in marked_indices:
            node_iteration[node_of[i]] = iteration
        layers.append(frozenset(node_of[i] for i in marked_indices))
        for i in marked_indices:
            alive[i] = False
        for i in marked_indices:
            for j in targets[offsets[i] : offsets[i + 1]]:
                if alive[j]:
                    remaining[j] -= 1
            remaining[i] = 0
        alive_indices = [i for i in alive_indices if alive[i]]

    note_engine_use(
        "interpreted",
        kernel="arboricity-peel",
        rounds=ROUNDS_PER_ITERATION * iteration,
    )
    return _finish_decomposition(
        graph,
        arboricity,
        k,
        b,
        layers,
        node_iteration,
        identifiers,
        iteration,
        theoretical_bound,
        degree_snapshots,
    )


def _peel_vectorized(
    xp,
    csr: CSRAdjacency,
    k: int,
    b: int,
    n: int,
    arboricity: int,
    safety_cap: int,
    theoretical_bound: int,
    strict_iteration_bound: bool,
) -> tuple[list[frozenset], dict, list[dict], int]:
    """The Compress(G, b, k) peeling loop as array operations on ``xp``.

    One segment reduction per iteration counts each node's alive
    neighbours of remaining degree > k; the marked set and the degree
    drops follow as masks.  Snapshots store Python ints (``tolist``) so
    ``_classify_edges`` compares exactly what the interpreted loop
    recorded.
    """
    indptr, indices, _ = csr.array_layout()
    node_of = csr.nodes
    remaining = indptr[1:] - indptr[:-1]
    alive = xp.full(n, True, dtype=xp.bool_)

    layers: list[frozenset] = []
    node_iteration: dict[Hashable, int] = {}
    degree_snapshots: list[dict] = []
    iteration = 0

    while alive.any():
        iteration += 1
        if iteration > safety_cap:
            raise RuntimeError(
                f"Algorithm 3 did not terminate within {safety_cap} iterations "
                f"(n={n}, a={arboricity}, b={b}, k={k})"
            )
        if strict_iteration_bound and iteration > theoretical_bound:
            raise RuntimeError(
                f"Algorithm 3 exceeded the Lemma 13 bound of {theoretical_bound} "
                f"iterations (n={n}, a={arboricity}, b={b}, k={k})"
            )
        alive_idx = xp.flatnonzero(alive)
        degree_snapshots.append(
            dict(
                zip(
                    (node_of[i] for i in alive_idx.tolist()),
                    remaining[alive_idx].tolist(),
                )
            )
        )
        high = alive & (remaining > k)
        marked = (
            alive & (remaining <= k) & (xp.segment_sum(high[indices], indptr) <= b)
        )
        if not marked.any():
            raise RuntimeError(
                "Algorithm 3 made no progress; the arboricity bound or the "
                "parameters (b, k) are inconsistent with the input graph"
            )
        marked_list = xp.flatnonzero(marked).tolist()
        for i in marked_list:
            node_iteration[node_of[i]] = iteration
        layers.append(frozenset(node_of[i] for i in marked_list))
        alive[marked] = False
        drops = xp.segment_sum(marked[indices], indptr)
        remaining = xp.where(alive, remaining - drops, 0)

    return layers, node_iteration, degree_snapshots, iteration


def _finish_decomposition(
    graph: nx.Graph,
    arboricity: int,
    k: int,
    b: int,
    layers: list[frozenset],
    node_iteration: dict,
    identifiers: dict,
    iteration: int,
    theoretical_bound: int,
    degree_snapshots: list[dict],
) -> ArboricityDecomposition:
    """Assemble the decomposition and derive the Section 4 edge structures."""
    decomposition = ArboricityDecomposition(
        graph=graph,
        arboricity=arboricity,
        k=k,
        b=b,
        layers=layers,
        node_iteration=node_iteration,
        identifiers=dict(identifiers),
        iterations=iteration,
        typical_edges=set(),
        atypical_edges=set(),
        forests=[],
        forest_colorings=[],
        star_collections={},
        forest_coloring_rounds=0,
        rounds=0,
        theoretical_iteration_bound=theoretical_bound,
        degree_snapshots=degree_snapshots,
    )
    _classify_edges(decomposition)
    _build_forests(decomposition)
    decomposition.rounds = (
        ROUNDS_PER_ITERATION * decomposition.iterations
        + CLASSIFICATION_ROUNDS
        + decomposition.forest_coloring_rounds
    )
    return decomposition


def _classify_edges(decomposition: ArboricityDecomposition) -> None:
    """Split the edges into typical and atypical (the sets E2 and E1)."""
    graph = decomposition.graph
    snapshots = decomposition.degree_snapshots
    k = decomposition.k
    typical: set = set()
    atypical: set = set()
    for u, v in graph.edges():
        lower = decomposition.lower_endpoint(u, v)
        higher = decomposition.higher_endpoint(u, v)
        snapshot = snapshots[decomposition.node_iteration[lower] - 1]
        if snapshot.get(higher, 0) > k:
            atypical.add((u, v))
        else:
            typical.add((u, v))
    decomposition.typical_edges = typical
    decomposition.atypical_edges = atypical


def _build_forests(decomposition: ArboricityDecomposition) -> None:
    """Partition the atypical edges into forests and star collections.

    Each lower endpoint colours its atypical edges towards higher
    neighbours with distinct colours from ``{1, ..., b}``; the edges of
    colour ``i`` form the forest ``F_i`` (every node has at most one higher
    neighbour in it).  Each forest is rooted towards higher endpoints and
    vertex 3-coloured with the Cole–Vishkin subroutine; splitting by the
    colour of the higher endpoint yields the star collections ``F_{i,j}``.
    """
    # Imported lazily to keep the decomposition package importable without
    # triggering the baselines package (which depends on repro.core).
    from repro.baselines.forest_coloring import color_forest_three

    per_lower: dict[Hashable, list] = {}
    for u, v in decomposition.atypical_edges:
        lower = decomposition.lower_endpoint(u, v)
        per_lower.setdefault(lower, []).append((u, v))

    num_forests = max(decomposition.b, 1)
    forests: list[set] = [set() for _ in range(num_forests)]
    for lower, edges in per_lower.items():
        edges_sorted = sorted(
            edges,
            key=lambda edge: decomposition.identifiers[
                decomposition.higher_endpoint(*edge)
            ],
        )
        if len(edges_sorted) > num_forests:
            raise RuntimeError(
                f"node {lower!r} has {len(edges_sorted)} atypical edges, more than "
                f"b={decomposition.b}; the compress operation guarantees at most b"
            )
        for index, edge in enumerate(edges_sorted):
            forests[index].add(edge)

    colorings: list[dict] = []
    star_collections: dict[tuple[int, int], set] = {}
    max_coloring_rounds = 0
    for index, forest_edges in enumerate(forests):
        if not forest_edges:
            colorings.append({})
            continue
        forest_graph = nx.Graph()
        forest_graph.add_edges_from(forest_edges)
        parents = {}
        for node in forest_graph.nodes():
            parents[node] = None
        for u, v in forest_edges:
            lower = decomposition.lower_endpoint(u, v)
            higher = decomposition.higher_endpoint(u, v)
            parents[lower] = higher
        colours, rounds = color_forest_three(
            forest_graph,
            parents,
            identifiers={
                node: decomposition.identifiers[node] for node in forest_graph.nodes()
            },
        )
        max_coloring_rounds = max(max_coloring_rounds, rounds)
        colorings.append(colours)
        for u, v in forest_edges:
            higher = decomposition.higher_endpoint(u, v)
            colour = colours[higher]
            star_collections.setdefault((index + 1, colour), set()).add((u, v))

    decomposition.forests = forests
    decomposition.forest_colorings = colorings
    decomposition.star_collections = star_collections
    decomposition.forest_coloring_rounds = max_coloring_rounds
