"""The rake-and-compress process of [CHL+19] (Algorithm 1 of the paper).

The process peels a tree layer by layer.  In iteration ``i`` it first
*compresses* every node whose degree and all of whose neighbours' degrees
(in the remaining tree) are at most ``k``, and then *rakes* every node of
degree at most 1 in the remaining tree (after removing the nodes
compressed in this iteration).  After ``O(log_k n)`` iterations every node
has been marked.

The decomposition exposes the two structural facts the transformation
relies on:

* **Lemma 10** — the subgraph induced by the edges whose lower endpoint is
  in a compress layer (in particular, the subgraph induced by the
  compressed nodes) has maximum degree at most ``k``;
* **Lemma 11** — every connected component of the subgraph induced by the
  raked nodes has diameter ``O(log_k n)``.

Each iteration of the process is a constant number of LOCAL rounds (a node
only inspects its neighbours' remaining degrees); the recorded
``rounds`` charge is two rounds per iteration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable

import networkx as nx

from repro.local.csr import CSRAdjacency
from repro.local.engine import note_engine_use

#: Rounds charged per peeling iteration (one for the compress test, one for
#: the rake test — each only inspects the 1-hop neighbourhood).
ROUNDS_PER_ITERATION = 2


@dataclass(frozen=True)
class Layer:
    """One layer of the decomposition."""

    iteration: int
    kind: str  # "compress" or "rake"
    nodes: frozenset

    @property
    def order_index(self) -> int:
        """Position of the layer in the lower-to-higher total order.

        Within one iteration the compress layer is created before the rake
        layer, so it is the lower of the two.
        """
        offset = 0 if self.kind == "compress" else 1
        return 2 * (self.iteration - 1) + offset


@dataclass
class RakeCompressDecomposition:
    """The output of Algorithm 1 on a tree."""

    tree: nx.Graph
    k: int
    layers: list[Layer]
    node_layer: dict[Hashable, Layer]
    iterations: int
    rounds: int
    theoretical_iteration_bound: int
    identifiers: dict[Hashable, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # node sets
    # ------------------------------------------------------------------
    @property
    def compressed_nodes(self) -> set:
        """All nodes marked by a compress operation."""
        return {v for v, layer in self.node_layer.items() if layer.kind == "compress"}

    @property
    def raked_nodes(self) -> set:
        """All nodes marked by a rake operation."""
        return {v for v, layer in self.node_layer.items() if layer.kind == "rake"}

    # ------------------------------------------------------------------
    # the total order on nodes (layer first, identifier second)
    # ------------------------------------------------------------------
    def order_key(self, node: Hashable) -> tuple[int, int]:
        """Sort key realising the paper's lower-to-higher total order."""
        return (self.node_layer[node].order_index, self.identifiers[node])

    def is_higher(self, u: Hashable, v: Hashable) -> bool:
        """Whether ``u`` is higher than ``v`` in the total order."""
        return self.order_key(u) > self.order_key(v)

    def lower_endpoint(self, u: Hashable, v: Hashable) -> Hashable:
        """The lower endpoint of the edge ``{u, v}``."""
        return v if self.is_higher(u, v) else u

    # ------------------------------------------------------------------
    # Lemma 10 / Lemma 11 as checkable properties
    # ------------------------------------------------------------------
    def compress_edge_subgraph(self) -> nx.Graph:
        """The subgraph induced by edges whose lower endpoint is compressed."""
        graph = nx.Graph()
        for u, v in self.tree.edges():
            lower = self.lower_endpoint(u, v)
            if self.node_layer[lower].kind == "compress":
                graph.add_edge(u, v)
        return graph

    def compress_edge_max_degree(self) -> int:
        """Maximum degree of the Lemma 10 subgraph (must be at most ``k``)."""
        graph = self.compress_edge_subgraph()
        return max((d for _, d in graph.degree()), default=0)

    def compressed_subgraph_max_degree(self) -> int:
        """Maximum degree of the subgraph induced by compressed nodes (≤ k)."""
        subgraph = self.tree.subgraph(self.compressed_nodes)
        return max((d for _, d in subgraph.degree()), default=0)

    def raked_component_diameters(self) -> list[int]:
        """Diameters of the connected components induced by raked nodes."""
        subgraph = self.tree.subgraph(self.raked_nodes)
        diameters = []
        for component in nx.connected_components(subgraph):
            component_graph = subgraph.subgraph(component)
            if component_graph.number_of_nodes() <= 1:
                diameters.append(0)
            else:
                diameters.append(nx.diameter(component_graph))
        return diameters

    def lemma_11_diameter_bound(self) -> int:
        """The paper's bound ``4(log_k n + 1) + 2`` on raked component diameters."""
        n = max(self.tree.number_of_nodes(), 2)
        return math.ceil(4 * (math.log(n) / math.log(self.k) + 1) + 2)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RakeCompressDecomposition(n={self.tree.number_of_nodes()}, k={self.k}, "
            f"iterations={self.iterations}, compressed={len(self.compressed_nodes)}, "
            f"raked={len(self.raked_nodes)})"
        )


def rake_and_compress(
    tree: nx.Graph,
    k: int,
    identifiers: dict[Hashable, int] | None = None,
    strict_iteration_bound: bool = False,
) -> RakeCompressDecomposition:
    """Run Algorithm 1 on ``tree`` with compress parameter ``k``.

    Parameters
    ----------
    tree:
        The input tree (or forest; every component is peeled independently,
        which only helps the process).
    k:
        The compress threshold, at least 2.
    identifiers:
        Optional unique integer identifiers used to break ties inside a
        layer (defaults to a deterministic numbering).
    strict_iteration_bound:
        When true, raise if the process needs more than the paper's
        ``⌈log_k n⌉ + 1`` iterations; otherwise keep iterating (and record
        the excess), which is useful for k-sweep ablations.

    Engine choice is ambient (:class:`~repro.local.EnginePolicy`): under
    ``auto``/``vectorized`` the peeling loop runs as whole-forest array
    operations on the policy's backend (identical layers, iterations and
    errors).

    Returns
    -------
    RakeCompressDecomposition
    """
    if k < 2:
        raise ValueError("the compress parameter k must be at least 2")
    if tree.number_of_nodes() == 0:
        return RakeCompressDecomposition(tree, k, [], {}, 0, 0, 1, {})
    if tree.number_of_edges() >= tree.number_of_nodes():
        raise ValueError("the input graph contains a cycle; Algorithm 1 expects a forest")

    if identifiers is None:
        ordered = sorted(tree.nodes(), key=repr)
        identifiers = {node: index + 1 for index, node in enumerate(ordered)}

    n = tree.number_of_nodes()
    theoretical_bound = math.ceil(math.log(max(n, 2)) / math.log(k)) + 1
    safety_cap = max(4 * theoretical_bound + 8, 32)

    # One-time CSR indexing: the peeling loop runs on int indices and
    # flat offset/target arrays rather than dict-of-set adjacencies.
    csr = CSRAdjacency.from_graph(tree)

    from repro.local.vectorized import active_backend

    xp = active_backend()
    if xp is not None:
        layers, node_layer, iteration = _peel_vectorized(
            xp, csr, k, n, safety_cap, theoretical_bound, strict_iteration_bound
        )
        note_engine_use(
            "vectorized",
            kernel="rake-compress-peel",
            backend=xp.name,
            rounds=ROUNDS_PER_ITERATION * iteration,
        )
        return RakeCompressDecomposition(
            tree=tree,
            k=k,
            layers=layers,
            node_layer=node_layer,
            iterations=iteration,
            rounds=ROUNDS_PER_ITERATION * iteration,
            theoretical_iteration_bound=theoretical_bound,
            identifiers=dict(identifiers),
        )

    node_of = csr.nodes
    offsets, targets = csr.offsets, csr.targets
    remaining = csr.degrees()
    alive = [True] * n
    alive_indices = list(range(n))

    layers: list[Layer] = []
    node_layer: dict[Hashable, Layer] = {}
    iteration = 0

    while alive_indices:
        iteration += 1
        if iteration > safety_cap:
            raise RuntimeError(
                f"rake-and-compress did not terminate within {safety_cap} iterations "
                f"(n={n}, k={k}); this contradicts Lemma 9"
            )
        if strict_iteration_bound and iteration > theoretical_bound:
            raise RuntimeError(
                f"rake-and-compress exceeded the ⌈log_k n⌉+1 = {theoretical_bound} "
                f"iteration bound (n={n}, k={k})"
            )

        # Compress: degree ≤ k and all neighbours' degrees ≤ k (in the
        # remaining forest).
        compressed = [
            i
            for i in alive_indices
            if remaining[i] <= k
            and all(
                remaining[j] <= k
                for j in targets[offsets[i] : offsets[i + 1]]
                if alive[j]
            )
        ]
        _remove(compressed, alive, offsets, targets, remaining)
        alive_indices = [i for i in alive_indices if alive[i]]
        if compressed:
            layer = Layer(iteration, "compress", frozenset(node_of[i] for i in compressed))
            layers.append(layer)
            for i in compressed:
                node_layer[node_of[i]] = layer

        # Rake: degree ≤ 1 in the forest remaining after the compress step.
        raked = [i for i in alive_indices if remaining[i] <= 1]
        _remove(raked, alive, offsets, targets, remaining)
        alive_indices = [i for i in alive_indices if alive[i]]
        if raked:
            layer = Layer(iteration, "rake", frozenset(node_of[i] for i in raked))
            layers.append(layer)
            for i in raked:
                node_layer[node_of[i]] = layer

        if not compressed and not raked:
            raise RuntimeError(
                "rake-and-compress made no progress; the input is not a forest"
            )

    note_engine_use(
        "interpreted",
        kernel="rake-compress-peel",
        rounds=ROUNDS_PER_ITERATION * iteration,
    )
    return RakeCompressDecomposition(
        tree=tree,
        k=k,
        layers=layers,
        node_layer=node_layer,
        iterations=iteration,
        rounds=ROUNDS_PER_ITERATION * iteration,
        theoretical_iteration_bound=theoretical_bound,
        identifiers=dict(identifiers),
    )


def _remove(
    marked: list[int],
    alive: list[bool],
    offsets: list[int],
    targets: list[int],
    remaining: list[int],
) -> None:
    """Remove ``marked`` indices from the remaining forest, updating degrees."""
    for i in marked:
        alive[i] = False
    for i in marked:
        for j in targets[offsets[i] : offsets[i + 1]]:
            if alive[j]:
                remaining[j] -= 1
        remaining[i] = 0


def _peel_vectorized(
    xp,
    csr: CSRAdjacency,
    k: int,
    n: int,
    safety_cap: int,
    theoretical_bound: int,
    strict_iteration_bound: bool,
) -> tuple[list[Layer], dict, int]:
    """The peeling loop as whole-forest array operations on backend ``xp``.

    Per iteration: one segment reduction decides the compress set (no
    alive neighbour of remaining degree > k), one more the degree drops
    from the removed nodes, then the same for the rake set.  The layers
    produced are identical to the interpreted loop's — both remove all
    marked nodes of an iteration simultaneously.
    """
    indptr, indices, _ = csr.array_layout()
    node_of = csr.nodes
    remaining = indptr[1:] - indptr[:-1]
    alive = xp.full(n, True, dtype=xp.bool_)

    def remove(mask):
        alive[mask] = False
        drops = xp.segment_sum(mask[indices], indptr)
        return xp.where(alive, remaining - drops, 0)

    layers: list[Layer] = []
    node_layer: dict[Hashable, Layer] = {}
    iteration = 0

    while alive.any():
        iteration += 1
        if iteration > safety_cap:
            raise RuntimeError(
                f"rake-and-compress did not terminate within {safety_cap} iterations "
                f"(n={n}, k={k}); this contradicts Lemma 9"
            )
        if strict_iteration_bound and iteration > theoretical_bound:
            raise RuntimeError(
                f"rake-and-compress exceeded the ⌈log_k n⌉+1 = {theoretical_bound} "
                f"iteration bound (n={n}, k={k})"
            )

        high = alive & (remaining > k)
        compressed = (
            alive & (remaining <= k) & (xp.segment_sum(high[indices], indptr) == 0)
        )
        remaining = remove(compressed)
        if compressed.any():
            layer = Layer(
                iteration,
                "compress",
                frozenset(node_of[i] for i in xp.flatnonzero(compressed).tolist()),
            )
            layers.append(layer)
            for node in layer.nodes:
                node_layer[node] = layer

        raked = alive & (remaining <= 1)
        remaining = remove(raked)
        if raked.any():
            layer = Layer(
                iteration,
                "rake",
                frozenset(node_of[i] for i in xp.flatnonzero(raked).tolist()),
            )
            layers.append(layer)
            for node in layer.nodes:
                node_layer[node] = layer

        if not compressed.any() and not raked.any():
            raise RuntimeError(
                "rake-and-compress made no progress; the input is not a forest"
            )

    return layers, node_layer, iteration
