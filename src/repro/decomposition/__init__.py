"""Graph decompositions used by the transformation.

* :mod:`repro.decomposition.rake_compress` — the CHL+19 rake-and-compress
  process (Algorithm 1 of the paper) used by Theorem 12 on trees, together
  with the structural guarantees of Lemmas 10 and 11 as checkable
  properties.
* :mod:`repro.decomposition.arboricity` — the new Decomposition process of
  the paper (Algorithm 3) for graphs of bounded arboricity used by
  Theorem 15: layers, typical/atypical edges, the ``2a`` forests ``F_i``
  and the ``6a`` star collections ``F_{i,j}``, with the guarantees of
  Lemmas 13 and 14 as checkable properties.
"""

from repro.decomposition.rake_compress import (
    Layer,
    RakeCompressDecomposition,
    rake_and_compress,
)
from repro.decomposition.arboricity import (
    ArboricityDecomposition,
    arboricity_decomposition,
)

__all__ = [
    "Layer",
    "RakeCompressDecomposition",
    "rake_and_compress",
    "ArboricityDecomposition",
    "arboricity_decomposition",
]
