"""(deg+1)- and (Δ+1)-vertex colouring in ``O(Δ² + log* n)`` rounds.

Pipeline: Linial colour reduction to ``O(Δ²)`` colours in ``O(log* n)``
rounds, followed by a colour-class sweep taking one round per remaining
colour class.  Every node's final colour is at most its degree plus one,
so the result is simultaneously a (deg+1)- and a (Δ+1)-colouring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

import networkx as nx

from repro.baselines.color_reduction import reduce_to_deg_plus_one
from repro.baselines.linial import linial_coloring


@dataclass
class ColoringRun:
    """Outcome of a truly local colouring run."""

    colours: dict
    rounds: int
    linial_rounds: int
    sweep_rounds: int
    palette_after_linial: int


def deg_plus_one_coloring(
    graph: nx.Graph, identifiers: Mapping[Hashable, int] | None = None
) -> ColoringRun:
    """Colour ``graph`` properly with each colour at most ``deg + 1``.

    Round complexity: ``O(Δ² + log* n)`` — the measured breakdown is
    returned alongside the colouring.
    """
    if graph.number_of_nodes() == 0:
        return ColoringRun({}, 0, 0, 0, 0)
    initial, palette, linial_rounds = linial_coloring(graph, identifiers=identifiers)
    colours, sweep_rounds = reduce_to_deg_plus_one(
        graph, initial, palette, identifiers=identifiers
    )
    return ColoringRun(
        colours=colours,
        rounds=linial_rounds + sweep_rounds,
        linial_rounds=linial_rounds,
        sweep_rounds=sweep_rounds,
        palette_after_linial=palette,
    )
