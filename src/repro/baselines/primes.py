"""Tiny prime-number utilities used by Linial's colour reduction.

The field sizes needed by the reduction are of the order of ``Δ · log C``,
i.e. small, so trial division is entirely adequate.
"""

from __future__ import annotations


def is_prime(value: int) -> bool:
    """Primality by trial division (intended for small values)."""
    if value < 2:
        return False
    if value < 4:
        return True
    if value % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= value:
        if value % divisor == 0:
            return False
        divisor += 2
    return True


def next_prime(value: int) -> int:
    """The smallest prime that is at least ``value``."""
    candidate = max(value, 2)
    while not is_prime(candidate):
        candidate += 1
    return candidate
