"""Maximal independent set in ``O(Δ² + log* n)`` rounds.

Pipeline: (deg+1)-vertex colouring, then one round per colour class in
which the nodes of the class join the independent set unless a neighbour
already did.  Classes are independent sets, so simultaneous joins never
conflict; processing classes in increasing order makes the result maximal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

import networkx as nx

from repro.baselines.coloring import deg_plus_one_coloring
from repro.local import Network, NodeContext, RunResult, SynchronousAlgorithm, select_engine


class ColorClassMIS(SynchronousAlgorithm):
    """Greedy MIS by colour classes (per-node input: the node's colour)."""

    name = "color-class-mis"

    def initial_state(self, ctx: NodeContext) -> dict:
        return {"round": 0, "in_mis": False, "blocked": False}

    def messages(self, state: dict, ctx: NodeContext) -> dict:
        return {neighbor: state["in_mis"] for neighbor in ctx.neighbors}

    def transition(self, state: dict, inbox: dict, ctx: NodeContext) -> dict:
        state = dict(state)
        state["round"] += 1
        if any(inbox.values()):
            state["blocked"] = True
        if ctx.node_input == state["round"] and not state["blocked"]:
            state["in_mis"] = True
        return state

    def has_terminated(self, state: dict, ctx: NodeContext) -> bool:
        # One extra round lets joins from the final class propagate so that
        # every node's "blocked" flag is consistent before outputs are read.
        return state["round"] >= ctx.shared["num_classes"] + 1

    def output(self, state: dict, ctx: NodeContext) -> bool:
        return state["in_mis"]


@dataclass
class MISRun:
    """Outcome of a truly local MIS run."""

    independent_set: set
    rounds: int
    coloring_rounds: int
    sweep_rounds: int


def maximal_independent_set(
    graph: nx.Graph, identifiers: Mapping[Hashable, int] | None = None
) -> MISRun:
    """Compute an MIS of ``graph`` in ``O(Δ² + log* n)`` rounds."""
    if graph.number_of_nodes() == 0:
        return MISRun(set(), 0, 0, 0)
    coloring = deg_plus_one_coloring(graph, identifiers=identifiers)
    num_classes = max(coloring.colours.values(), default=1)
    network = Network(
        graph,
        identifiers=identifiers,
        node_inputs=dict(coloring.colours),
        shared={"num_classes": num_classes},
    )
    algorithm = ColorClassMIS()
    result: RunResult = select_engine(algorithm)(
        network, algorithm, max_rounds=num_classes + 2
    )
    independent = {node for node, joined in result.outputs.items() if joined}
    return MISRun(
        independent_set=independent,
        rounds=coloring.rounds + result.rounds,
        coloring_rounds=coloring.rounds,
        sweep_rounds=result.rounds,
    )
