"""Colour-class sweep: reduce a proper ``C``-colouring to a (deg+1)-colouring.

One colour class is processed per round; because a colour class is an
independent set, all of its nodes may simultaneously pick the smallest
colour not already taken by a finished neighbour, which is always at most
``deg + 1``.  This costs ``C`` rounds — the standard additive trade-off
used by every truly local algorithm built from Linial's colouring.
"""

from __future__ import annotations

from typing import Hashable, Mapping

import networkx as nx

from repro.local import Network, NodeContext, RunResult, SynchronousAlgorithm, select_engine


class ColorClassReduction(SynchronousAlgorithm):
    """Greedy recolouring by colour classes.

    Per-node input: the node's colour in the initial proper colouring.
    Shared input ``num_classes``: the palette size of the initial colouring.
    """

    name = "color-class-reduction"

    def initial_state(self, ctx: NodeContext) -> dict:
        return {"round": 0, "final": None}

    def messages(self, state: dict, ctx: NodeContext) -> dict:
        return {neighbor: state["final"] for neighbor in ctx.neighbors}

    def transition(self, state: dict, inbox: dict, ctx: NodeContext) -> dict:
        state = dict(state)
        state["round"] += 1
        if state["final"] is None and ctx.node_input == state["round"]:
            taken = {colour for colour in inbox.values() if colour is not None}
            candidate = 1
            while candidate in taken:
                candidate += 1
            state["final"] = candidate
        return state

    def has_terminated(self, state: dict, ctx: NodeContext) -> bool:
        return state["round"] >= ctx.shared["num_classes"]

    def output(self, state: dict, ctx: NodeContext) -> int:
        return state["final"]


def reduce_to_deg_plus_one(
    graph: nx.Graph,
    colours: Mapping[Hashable, int],
    num_classes: int,
    identifiers: Mapping[Hashable, int] | None = None,
) -> tuple[dict, int]:
    """Reduce a proper colouring to a (deg+1)-colouring in ``num_classes`` rounds.

    Returns ``(new_colours, rounds)``.
    """
    network = Network(
        graph,
        identifiers=identifiers,
        node_inputs=dict(colours),
        shared={"num_classes": num_classes},
    )
    algorithm = ColorClassReduction()
    result: RunResult = select_engine(algorithm)(
        network, algorithm, max_rounds=num_classes + 1
    )
    return result.outputs, result.rounds
