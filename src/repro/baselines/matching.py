"""Maximal matching in ``O(Δ² + log* n)`` rounds.

Pipeline: (edge-degree+1)-edge colouring, then one round per edge-colour
class in which the edges of the class join the matching if both endpoints
are still unmatched.  A colour class is a matching by itself, so
simultaneous joins never conflict; processing every class makes the result
maximal.

The per-class sweep is a trivially local procedure (an edge only inspects
its endpoints); it is executed as a sequential loop with one charged round
per colour class, mirroring how the edge colouring's line-graph rounds are
charged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

import networkx as nx

from repro.baselines.edge_coloring import edge_degree_plus_one_coloring


@dataclass
class MatchingRun:
    """Outcome of a truly local maximal matching run."""

    matching: set  # canonical edge pairs
    rounds: int
    edge_coloring_rounds: int
    sweep_rounds: int


def maximal_matching(
    graph: nx.Graph, identifiers: Mapping[Hashable, int] | None = None
) -> MatchingRun:
    """Compute a maximal matching of ``graph`` in ``O(Δ² + log* n)`` rounds."""
    if graph.number_of_edges() == 0:
        return MatchingRun(set(), 0, 0, 0)
    coloring = edge_degree_plus_one_coloring(graph, identifiers=identifiers)
    num_classes = max(coloring.colours.values(), default=1)

    matched_nodes: set[Hashable] = set()
    matching: set = set()
    for colour_class in range(1, num_classes + 1):
        for edge, colour in coloring.colours.items():
            if colour != colour_class:
                continue
            u, v = edge
            if u not in matched_nodes and v not in matched_nodes:
                matching.add(edge)
                matched_nodes.update((u, v))

    return MatchingRun(
        matching=matching,
        rounds=coloring.rounds + num_classes,
        edge_coloring_rounds=coloring.rounds,
        sweep_rounds=num_classes,
    )
