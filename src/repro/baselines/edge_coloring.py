"""(edge-degree+1)-edge colouring in ``O(Δ² + log* n)`` rounds.

The algorithm runs the (deg+1)-vertex colouring of
:mod:`repro.baselines.coloring` on the line graph: a line-graph node is an
edge of the original graph, its line-graph degree equals the edge's
edge-degree, so the resulting colours are at most ``edge-degree + 1``.

One synchronous round on the line graph is simulated by two rounds on the
original graph (the two endpoints of an edge relay the messages of its
adjacent edges), so the reported round count is twice the line-graph round
count — the constant-factor overhead the paper's model permits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

import networkx as nx

from repro.baselines.coloring import deg_plus_one_coloring
from repro.semigraph.builders import edge_id_for


@dataclass
class EdgeColoringRun:
    """Outcome of a truly local edge colouring run."""

    colours: dict  # canonical edge pair -> colour
    rounds: int
    line_graph_rounds: int


def edge_degree_plus_one_coloring(
    graph: nx.Graph, identifiers: Mapping[Hashable, int] | None = None
) -> EdgeColoringRun:
    """Properly colour the edges with colours at most ``edge-degree + 1``.

    Returns colours keyed by the canonical edge pair (see
    :func:`repro.semigraph.builders.edge_id_for`).
    """
    if graph.number_of_edges() == 0:
        return EdgeColoringRun({}, 0, 0)
    line_graph = nx.line_graph(graph)
    line_identifiers = None
    if identifiers is not None:
        # Derive deterministic line-graph identifiers from endpoint identifiers.
        size = max(identifiers.values()) + 1
        line_identifiers = {
            edge: identifiers[edge[0]] * size + identifiers[edge[1]]
            for edge in line_graph.nodes()
        }
    run = deg_plus_one_coloring(line_graph, identifiers=line_identifiers)
    colours = {edge_id_for(u, v): colour for (u, v), colour in run.colours.items()}
    return EdgeColoringRun(
        colours=colours,
        rounds=2 * run.rounds,
        line_graph_rounds=run.rounds,
    )
