"""Adapters exposing the baselines through the transformation's interface.

The transformation (Theorems 12 and 15) consumes an algorithm ``A`` that
solves the problem ``Π`` *on semi-graphs* in ``O(f(Δ) + log* n)`` rounds,
where ``Δ`` is the maximum degree of the underlying graph.  A
:class:`TrulyLocalAlgorithm` bundles such an algorithm with the problem it
solves and its declared complexity function ``f`` (used to pick the
cut-off ``k = g(n)``).

Every adapter solves the problem on the *underlying graph* of the
semi-graph with a genuinely distributed baseline from this package and
lifts the result to half-edge labels with the problem's ``from_classic``
conversion (the 1-round transformations described in Section 5 of the
paper); rank-1 half-edges receive the labels the respective encoding
prescribes for them.
"""

from __future__ import annotations

from repro.baselines.coloring import deg_plus_one_coloring
from repro.baselines.edge_coloring import edge_degree_plus_one_coloring
from repro.baselines.matching import maximal_matching
from repro.baselines.mis import maximal_independent_set
from repro.core.complexity import quadratic
from repro.core.interfaces import OracleCostModel, TrulyLocalAlgorithm
from repro.problems import (
    DegreePlusOneColoring,
    EdgeDegreePlusOneEdgeColoring,
    MaximalIndependentSetProblem,
    MaximalMatchingProblem,
)
from repro.semigraph import HalfEdgeLabeling, SemiGraph
from repro.semigraph.builders import edge_id_for

__all__ = [
    "TrulyLocalAlgorithm",
    "OracleCostModel",
    "DegPlusOneColoringAlgorithm",
    "MISAlgorithm",
    "EdgeColoringAlgorithm",
    "MaximalMatchingAlgorithm",
]


def _underlying_edge_map(semigraph: SemiGraph) -> dict:
    """Map canonical endpoint pairs of the underlying graph to semi-graph edge ids."""
    mapping = {}
    for edge in semigraph.edges_of_rank(2):
        u, v = semigraph.endpoints(edge)
        mapping[edge_id_for(u, v)] = edge
    return mapping


class DegPlusOneColoringAlgorithm(TrulyLocalAlgorithm):
    """(deg+1)-vertex colouring via Linial + colour-class sweep: ``f(Δ) = O(Δ²)``."""

    name = "deg+1-coloring (Linial + sweep)"

    def __init__(self) -> None:
        self.problem = DegreePlusOneColoring()
        self.complexity = quadratic(shift=3.0)

    def solve_semigraph(self, semigraph: SemiGraph) -> tuple[HalfEdgeLabeling, int]:
        graph = semigraph.underlying_graph()
        run = deg_plus_one_coloring(graph)
        labeling = self.problem.from_classic(semigraph, run.colours)
        return labeling, run.rounds


class MISAlgorithm(TrulyLocalAlgorithm):
    """Maximal independent set via colour-class sweep: ``f(Δ) = O(Δ²)``."""

    name = "MIS (Linial + sweep)"

    def __init__(self) -> None:
        self.problem = MaximalIndependentSetProblem()
        self.complexity = quadratic(shift=3.0)

    def solve_semigraph(self, semigraph: SemiGraph) -> tuple[HalfEdgeLabeling, int]:
        graph = semigraph.underlying_graph()
        run = maximal_independent_set(graph)
        labeling = self.problem.from_classic(semigraph, run.independent_set)
        return labeling, run.rounds


class EdgeColoringAlgorithm(TrulyLocalAlgorithm):
    """(edge-degree+1)-edge colouring via the line graph: ``f(Δ) = O(Δ²)``."""

    name = "(edge-degree+1)-edge-coloring (line graph Linial + sweep)"

    def __init__(self) -> None:
        self.problem = EdgeDegreePlusOneEdgeColoring()
        self.complexity = quadratic(scale=4.0, shift=3.0)

    def solve_semigraph(self, semigraph: SemiGraph) -> tuple[HalfEdgeLabeling, int]:
        graph = semigraph.underlying_graph()
        run = edge_degree_plus_one_coloring(graph)
        edge_map = _underlying_edge_map(semigraph)
        classic = {edge_map[pair]: colour for pair, colour in run.colours.items()}
        labeling = self.problem.from_classic(semigraph, classic)
        return labeling, run.rounds


class MaximalMatchingAlgorithm(TrulyLocalAlgorithm):
    """Maximal matching via edge-colour-class sweep: ``f(Δ) = O(Δ²)``."""

    name = "maximal matching (edge colouring + sweep)"

    def __init__(self) -> None:
        self.problem = MaximalMatchingProblem()
        self.complexity = quadratic(scale=4.0, shift=3.0)

    def solve_semigraph(self, semigraph: SemiGraph) -> tuple[HalfEdgeLabeling, int]:
        graph = semigraph.underlying_graph()
        run = maximal_matching(graph)
        edge_map = _underlying_edge_map(semigraph)
        classic = {edge_map[pair] for pair in run.matching}
        labeling = self.problem.from_classic(semigraph, classic)
        return labeling, run.rounds
