"""Cole–Vishkin / GPS87 3-colouring of rooted forests in ``O(log* n)`` rounds.

The algorithm is used by the paper in two places: as the ``O(log* n)``-round
subroutine that splits the atypical-edge forests ``F_i`` into star
collections ``F_{i,j}`` (Section 4), and implicitly inside every truly
local baseline through Linial-style colour reduction.

The implementation is the textbook one:

1. *Colour reduction* — starting from the unique identifiers, each node
   repeatedly recolours itself with ``2·i + b`` where ``i`` is the lowest
   bit position in which its colour differs from its parent's colour and
   ``b`` is its own bit at that position.  Roots use a virtual parent that
   differs in bit 0.  After ``O(log* n)`` iterations every colour lies in
   ``{0, ..., 5}``.
2. *Shift-down and recolour* — three times, every node adopts its parent's
   colour (roots pick a fresh colour), after which each eliminated colour
   class is an independent set whose nodes see at most two distinct
   colours in their neighbourhood and can move to ``{0, 1, 2}``.

The number of iterations of step 1 is a fixed function of the identifier
space, so every node terminates after the same, locally computable number
of rounds — as a deterministic LOCAL algorithm must.
"""

from __future__ import annotations

from typing import Hashable, Mapping

import networkx as nx

from repro.local import (
    Network,
    NodeContext,
    RunResult,
    SynchronousAlgorithm,
    select_engine,
)


def reduction_iterations(max_identifier: int) -> int:
    """Number of Cole–Vishkin iterations needed to reach colours in {0..5}.

    Colours start in ``[0, 2^bits)``; one iteration maps them into
    ``[0, 2·bits)``.  We iterate until the colour space is ``{0..7}`` and
    then perform one final iteration to land in ``{0..5}``.
    """
    bits = max(int(max_identifier).bit_length(), 3)
    iterations = 1
    while bits > 3:
        bits = (2 * bits - 1).bit_length()
        iterations += 1
    return iterations


def cole_vishkin_step(colour: int, parent_colour: int) -> int:
    """One Cole–Vishkin recolouring step."""
    differing = colour ^ parent_colour
    if differing == 0:
        raise ValueError("adjacent nodes share a colour; the colouring is not proper")
    index = (differing & -differing).bit_length() - 1
    bit = (colour >> index) & 1
    return 2 * index + bit


class ForestThreeColoring(SynchronousAlgorithm):
    """3-colouring of a rooted forest; per-node input is the parent node."""

    name = "forest-3-coloring"

    def initial_state(self, ctx: NodeContext) -> dict:
        return {
            "round": 0,
            "colour": ctx.node_id,
            "reduce_rounds": reduction_iterations(ctx.max_identifier),
        }

    def messages(self, state: dict, ctx: NodeContext) -> dict:
        return {neighbor: state["colour"] for neighbor in ctx.neighbors}

    def transition(self, state: dict, inbox: dict, ctx: NodeContext) -> dict:
        state = dict(state)
        state["round"] += 1
        round_number = state["round"]
        reduce_rounds = state["reduce_rounds"]
        parent = ctx.node_input
        colour = state["colour"]

        if round_number <= reduce_rounds:
            parent_colour = inbox[parent] if parent is not None else colour ^ 1
            state["colour"] = cole_vishkin_step(colour, parent_colour)
            return state

        # Six final rounds: (shift-down, recolour) for classes 5, 4, 3.
        phase = round_number - reduce_rounds
        if phase > 6:
            return state
        if phase % 2 == 1:  # shift-down
            if parent is not None:
                state["colour"] = inbox[parent]
            else:
                # Roots only need to differ from their children's new colour
                # (their own old colour), so a colour from {0, 1, 2} works and
                # never resurrects an already-eliminated colour class.
                state["colour"] = min(c for c in (0, 1, 2) if c != colour)
            return state
        eliminated = {2: 5, 4: 4, 6: 3}[phase]
        if colour == eliminated:
            forbidden = set(inbox.values())
            state["colour"] = min(c for c in (0, 1, 2) if c not in forbidden)
        return state

    def has_terminated(self, state: dict, ctx: NodeContext) -> bool:
        return state["round"] >= state["reduce_rounds"] + 6

    def output(self, state: dict, ctx: NodeContext) -> int:
        return state["colour"] + 1  # colours 1, 2, 3


def color_forest_three(
    forest: nx.Graph,
    parents: Mapping[Hashable, Hashable | None],
    identifiers: Mapping[Hashable, int] | None = None,
) -> tuple[dict, int]:
    """3-colour a rooted forest in ``O(log* n)`` rounds.

    Parameters
    ----------
    forest:
        An undirected forest.
    parents:
        Parent pointer for every node (``None`` for roots).  Every
        non-``None`` parent must be a neighbour of the node.
    identifiers:
        Optional identifier assignment (defaults to the canonical one).
        Engine choice is ambient (:class:`~repro.local.EnginePolicy`).

    Returns
    -------
    (colours, rounds):
        A proper colouring with colours in ``{1, 2, 3}`` and the number of
        LOCAL rounds used.
    """
    for node in forest.nodes():
        parent = parents.get(node)
        if parent is not None and not forest.has_edge(node, parent):
            raise ValueError(f"parent {parent!r} of {node!r} is not a neighbour")
    network = Network(
        forest,
        identifiers=identifiers,
        node_inputs={node: parents.get(node) for node in forest.nodes()},
    )
    algorithm = ForestThreeColoring()
    result: RunResult = select_engine(algorithm)(network, algorithm)
    return result.outputs, result.rounds
