"""Linial's colour reduction on general graphs.

Starting from the unique identifiers (a trivial proper colouring with
``n^{O(1)}`` colours), each iteration maps a proper ``C``-colouring to a
proper ``q²``-colouring where ``q`` is a prime slightly larger than
``Δ · log_q C``, using the classic polynomial / cover-free-family argument:
a node encodes its colour as a degree-``d`` polynomial over ``GF(q)`` and
picks an evaluation point on which it differs from all of its neighbours'
polynomials.  After ``O(log* n)`` iterations the number of colours is
``O(Δ²)`` and stops shrinking.

The iteration schedule is a function of the identifier space and ``Δ``
only, so every node can compute it locally and terminate after the same
number of rounds.
"""

from __future__ import annotations

from typing import Hashable, Mapping

import networkx as nx

from repro.baselines.primes import next_prime
from repro.local import (
    Network,
    NodeContext,
    RunResult,
    SynchronousAlgorithm,
    select_engine,
)


def choose_field(num_colours: int, max_degree: int) -> tuple[int, int]:
    """The prime field size ``q`` and polynomial degree ``d`` for one step.

    Requirements: ``q^(d+1) >= num_colours`` (polynomials can encode every
    colour) and ``q > max_degree * d`` (an uncontested evaluation point
    exists).
    """
    delta = max(max_degree, 1)
    q = next_prime(delta + 2)
    while True:
        degree = 1
        while q ** (degree + 1) < num_colours:
            degree += 1
        if q > delta * degree:
            return q, degree
        q = next_prime(q + 1)


def reduction_schedule(initial_colours: int, max_degree: int) -> tuple[list[tuple[int, int, int]], int]:
    """The per-round ``(q, d, colours_before)`` schedule and the final palette size."""
    schedule: list[tuple[int, int, int]] = []
    colours = max(initial_colours, 2)
    while True:
        q, degree = choose_field(colours, max_degree)
        new_colours = q * q
        if new_colours >= colours:
            break
        schedule.append((q, degree, colours))
        colours = new_colours
    return schedule, colours


def polynomial_digits(colour: int, q: int, degree: int) -> list[int]:
    """The base-``q`` digits of ``colour`` (lowest first), padded to ``degree + 1``."""
    digits = []
    value = colour
    for _ in range(degree + 1):
        digits.append(value % q)
        value //= q
    return digits


def evaluate(digits: list[int], x: int, q: int) -> int:
    """Evaluate the polynomial with coefficients ``digits`` at ``x`` over ``GF(q)``."""
    result = 0
    power = 1
    for coefficient in digits:
        result = (result + coefficient * power) % q
        power = (power * x) % q
    return result


def linial_step(colour: int, neighbour_colours: list[int], q: int, degree: int) -> int:
    """One colour-reduction step; returns the new colour in ``[0, q²)``."""
    own = polynomial_digits(colour, q, degree)
    others = [
        polynomial_digits(c, q, degree) for c in neighbour_colours if c != colour
    ]
    for x in range(q):
        own_value = evaluate(own, x, q)
        if all(evaluate(other, x, q) != own_value for other in others):
            return x * q + own_value
    raise RuntimeError(
        "no free evaluation point found; the field parameters are inconsistent"
    )


class LinialColoring(SynchronousAlgorithm):
    """Linial colour reduction run as a synchronous LOCAL algorithm."""

    name = "linial-coloring"

    def initial_state(self, ctx: NodeContext) -> dict:
        schedule, final_colours = reduction_schedule(
            ctx.max_identifier + 1, ctx.max_degree
        )
        return {
            "round": 0,
            "colour": ctx.node_id,
            "schedule": schedule,
            "final_colours": final_colours,
        }

    def messages(self, state: dict, ctx: NodeContext) -> dict:
        return {neighbor: state["colour"] for neighbor in ctx.neighbors}

    def transition(self, state: dict, inbox: dict, ctx: NodeContext) -> dict:
        state = dict(state)
        state["round"] += 1
        index = state["round"] - 1
        if index < len(state["schedule"]):
            q, degree, _ = state["schedule"][index]
            state["colour"] = linial_step(
                state["colour"], list(inbox.values()), q, degree
            )
        return state

    def has_terminated(self, state: dict, ctx: NodeContext) -> bool:
        return state["round"] >= len(state["schedule"])

    def output(self, state: dict, ctx: NodeContext) -> int:
        return state["colour"] + 1  # colours 1 .. final_colours


def linial_coloring(
    graph: nx.Graph,
    identifiers: Mapping[Hashable, int] | None = None,
) -> tuple[dict, int, int]:
    """Properly colour ``graph`` with ``O(Δ²)`` colours in ``O(log* n)`` rounds.

    Returns ``(colours, palette_size, rounds)`` where colours are 1-based.
    Engine choice is ambient (:class:`~repro.local.EnginePolicy`):
    ``auto`` uses the array engine when a backend is available; results
    are identical either way.
    """
    network = Network(graph, identifiers=identifiers)
    if network.num_nodes == 0:
        return {}, 1, 0
    schedule, final_colours = reduction_schedule(
        network.max_identifier + 1, network.max_degree
    )
    algorithm = LinialColoring()
    result: RunResult = select_engine(algorithm)(network, algorithm)
    del schedule
    return result.outputs, final_colours, result.rounds
