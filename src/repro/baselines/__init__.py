"""Truly local baseline algorithms: the inputs of the transformation.

The transformation of the paper consumes an algorithm ``A`` for a problem
``Π`` with a round complexity of ``O(f(Δ) + log* n)``.  This package
implements such algorithms from first principles:

* :mod:`repro.baselines.forest_coloring` — Cole–Vishkin / GPS87
  3-colouring of rooted forests in ``O(log* n)`` rounds (used both as a
  stand-alone subroutine of Algorithm 4 and inside the other baselines);
* :mod:`repro.baselines.linial` — Linial's colour reduction to
  ``O(Δ²)`` colours in ``O(log* n)`` rounds on general graphs;
* :mod:`repro.baselines.color_reduction` — reduction of a proper
  ``C``-colouring to a (deg+1)-colouring in ``C`` additional rounds;
* :mod:`repro.baselines.coloring` — the combined (deg+1)- and
  (Δ+1)-colouring algorithms, ``O(Δ² + log* n)`` rounds;
* :mod:`repro.baselines.edge_coloring` — (edge-degree+1)-edge colouring via
  the line graph, ``O(Δ² + log* n)`` rounds;
* :mod:`repro.baselines.mis` and :mod:`repro.baselines.matching` — MIS and
  maximal matching by colour-class sweeps, ``O(Δ² + log* n)`` rounds;
* :mod:`repro.baselines.adapters` — wrappers exposing the baselines through
  the :class:`TrulyLocalAlgorithm` interface consumed by the
  transformation, together with declared complexity functions ``f``.

All message-passing subroutines run on the synchronous simulator of
:mod:`repro.local`; their measured round counts are what the experiment
harness reports.
"""

from repro.baselines.forest_coloring import color_forest_three
from repro.baselines.linial import linial_coloring
from repro.baselines.coloring import deg_plus_one_coloring
from repro.baselines.edge_coloring import edge_degree_plus_one_coloring
from repro.baselines.mis import maximal_independent_set
from repro.baselines.matching import maximal_matching
from repro.baselines.adapters import (
    TrulyLocalAlgorithm,
    DegPlusOneColoringAlgorithm,
    EdgeColoringAlgorithm,
    MISAlgorithm,
    MaximalMatchingAlgorithm,
    OracleCostModel,
)

__all__ = [
    "color_forest_three",
    "linial_coloring",
    "deg_plus_one_coloring",
    "edge_degree_plus_one_coloring",
    "maximal_independent_set",
    "maximal_matching",
    "TrulyLocalAlgorithm",
    "DegPlusOneColoringAlgorithm",
    "EdgeColoringAlgorithm",
    "MISAlgorithm",
    "MaximalMatchingAlgorithm",
    "OracleCostModel",
]
