"""Semi-graphs: the object model of Section 2 of the paper.

A semi-graph is a graph whose edges may have 0, 1, or 2 endpoints.  The
paper (Definition 4) phrases this as a bipartite incidence structure; this
package exposes it through the :class:`SemiGraph` class, together with
half-edges, induced sub-semi-graphs, and half-edge labelings.
"""

from repro.semigraph.semigraph import HalfEdge, SemiGraph
from repro.semigraph.labeling import HalfEdgeLabeling
from repro.semigraph.builders import (
    semigraph_from_graph,
    restrict_to_nodes,
    restrict_to_edges,
)

__all__ = [
    "HalfEdge",
    "SemiGraph",
    "HalfEdgeLabeling",
    "semigraph_from_graph",
    "restrict_to_nodes",
    "restrict_to_edges",
]
