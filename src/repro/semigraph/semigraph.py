"""The semi-graph data structure (Definition 4 of the paper).

A semi-graph consists of

* a set of *nodes*,
* a set of *edges*, each incident on 0, 1 or 2 nodes (its *rank*), and
* the induced set of *half-edges*: pairs ``(node, edge)`` for every
  incidence.

A standard graph is the special case in which every edge has rank 2.
Semi-graphs arise in the paper when a problem has been partially solved:
the unsolved part of the instance keeps edges whose other endpoint has
already been handled, and those edges drop to rank 1 (or 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

import networkx as nx

NodeId = Hashable
EdgeId = Hashable


@dataclass(frozen=True, order=True)
class HalfEdge:
    """An incidence between a node and an edge of a semi-graph."""

    node: NodeId
    edge: EdgeId

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HalfEdge(node={self.node!r}, edge={self.edge!r})"


class SemiGraph:
    """A graph whose edges may have 0, 1 or 2 endpoints.

    Parameters
    ----------
    nodes:
        Iterable of hashable node identifiers.
    edges:
        Mapping from edge identifier to a tuple of endpoint nodes.  The
        tuple may have length 0, 1 or 2; every endpoint must be a node of
        the semi-graph.  Edges with two identical endpoints (self-loops)
        are rejected, matching the paper's simple-graph setting.
    """

    def __init__(
        self,
        nodes: Iterable[NodeId] = (),
        edges: Mapping[EdgeId, tuple] | None = None,
    ) -> None:
        self._nodes: set[NodeId] = set(nodes)
        self._edges: dict[EdgeId, tuple] = {}
        self._incident: dict[NodeId, set[EdgeId]] = {v: set() for v in self._nodes}
        if edges:
            for edge_id, endpoints in edges.items():
                self.add_edge(edge_id, endpoints)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId) -> None:
        """Add an isolated node (a no-op if the node already exists)."""
        if node not in self._nodes:
            self._nodes.add(node)
            self._incident[node] = set()

    def add_edge(self, edge_id: EdgeId, endpoints: Iterable[NodeId]) -> None:
        """Add an edge with the given endpoints (0, 1 or 2 of them)."""
        endpoints = tuple(endpoints)
        if edge_id in self._edges:
            raise ValueError(f"duplicate edge identifier {edge_id!r}")
        if len(endpoints) > 2:
            raise ValueError("an edge of a semi-graph has at most 2 endpoints")
        if len(endpoints) == 2 and endpoints[0] == endpoints[1]:
            raise ValueError("self-loops are not allowed in a semi-graph")
        for v in endpoints:
            if v not in self._nodes:
                raise ValueError(f"endpoint {v!r} is not a node of the semi-graph")
        self._edges[edge_id] = endpoints
        for v in endpoints:
            self._incident[v].add(edge_id)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> frozenset:
        """The node set ``V_semi(S)``."""
        return frozenset(self._nodes)

    @property
    def edges(self) -> frozenset:
        """The edge identifiers ``E_semi(S)``."""
        return frozenset(self._edges)

    def endpoints(self, edge_id: EdgeId) -> tuple:
        """The endpoints of an edge, as a tuple of length 0, 1 or 2."""
        return self._edges[edge_id]

    def rank(self, edge_id: EdgeId) -> int:
        """The rank (number of endpoints) of an edge."""
        return len(self._edges[edge_id])

    def degree(self, node: NodeId) -> int:
        """The number of half-edges incident on ``node``."""
        return len(self._incident[node])

    def incident_edges(self, node: NodeId) -> frozenset:
        """The edges incident on ``node``."""
        return frozenset(self._incident[node])

    def half_edges(self) -> Iterator[HalfEdge]:
        """Iterate over all half-edges ``H(S)``."""
        for edge_id, endpoints in self._edges.items():
            for v in endpoints:
                yield HalfEdge(v, edge_id)

    def half_edges_of_node(self, node: NodeId) -> list[HalfEdge]:
        """All half-edges incident on ``node``."""
        return [HalfEdge(node, e) for e in sorted(self._incident[node], key=repr)]

    def half_edges_of_edge(self, edge_id: EdgeId) -> list[HalfEdge]:
        """All half-edges incident on ``edge_id`` (one per endpoint)."""
        return [HalfEdge(v, edge_id) for v in self._edges[edge_id]]

    def other_endpoint(self, edge_id: EdgeId, node: NodeId) -> NodeId | None:
        """The endpoint of a rank-2 edge other than ``node`` (``None`` otherwise)."""
        endpoints = self._edges[edge_id]
        if len(endpoints) != 2:
            return None
        if endpoints[0] == node:
            return endpoints[1]
        if endpoints[1] == node:
            return endpoints[0]
        raise ValueError(f"{node!r} is not an endpoint of edge {edge_id!r}")

    def num_nodes(self) -> int:
        """The number of nodes."""
        return len(self._nodes)

    def num_edges(self) -> int:
        """The number of edges (of any rank)."""
        return len(self._edges)

    def edges_of_rank(self, rank: int) -> list[EdgeId]:
        """All edge identifiers of the given rank."""
        return [e for e, endpoints in self._edges.items() if len(endpoints) == rank]

    # ------------------------------------------------------------------
    # derived structures
    # ------------------------------------------------------------------
    def neighbors(self, node: NodeId) -> set[NodeId]:
        """Neighbours of ``node`` in the underlying graph."""
        result: set[NodeId] = set()
        for e in self._incident[node]:
            other = self.other_endpoint(e, node)
            if other is not None:
                result.add(other)
        return result

    def underlying_graph(self) -> nx.Graph:
        """The underlying graph: rank-2 edges between the semi-graph's nodes.

        Parallel rank-2 edges collapse to a single graph edge, matching the
        paper's definition of the underlying graph.
        """
        graph = nx.Graph()
        graph.add_nodes_from(self._nodes)
        for edge_id, endpoints in self._edges.items():
            if len(endpoints) == 2:
                graph.add_edge(endpoints[0], endpoints[1], edge_id=edge_id)
        return graph

    def underlying_degree(self) -> int:
        """The maximum degree of the underlying graph (0 for an empty graph)."""
        graph = self.underlying_graph()
        if graph.number_of_nodes() == 0:
            return 0
        return max((d for _, d in graph.degree()), default=0)

    def max_degree(self) -> int:
        """Maximum number of incident half-edges over all nodes."""
        if not self._nodes:
            return 0
        return max(self.degree(v) for v in self._nodes)

    def edge_degree(self, edge_id: EdgeId) -> int:
        """Number of edges adjacent to ``edge_id`` (sharing an endpoint)."""
        adjacent: set[EdgeId] = set()
        for v in self._edges[edge_id]:
            adjacent.update(self._incident[v])
        adjacent.discard(edge_id)
        return len(adjacent)

    def connected_components(self) -> list[set]:
        """Connected components of the underlying graph.

        Nodes joined by rank-2 edges are in the same component; isolated
        nodes form singleton components.  Rank-0/1 edges do not connect
        anything.
        """
        return [set(c) for c in nx.connected_components(self.underlying_graph())]

    def component_diameter(self, component: set) -> int:
        """Diameter of a connected component of the underlying graph."""
        graph = self.underlying_graph().subgraph(component)
        if graph.number_of_nodes() <= 1:
            return 0
        return nx.diameter(graph)

    def is_connected(self) -> bool:
        """Whether the underlying graph is connected."""
        graph = self.underlying_graph()
        if graph.number_of_nodes() == 0:
            return True
        return nx.is_connected(graph)

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ranks = {r: len(self.edges_of_rank(r)) for r in (0, 1, 2)}
        return (
            f"SemiGraph(nodes={len(self._nodes)}, edges={len(self._edges)}, "
            f"ranks={ranks})"
        )

    def copy(self) -> "SemiGraph":
        """A deep-enough copy (node/edge structure; identifiers are shared)."""
        return SemiGraph(self._nodes, dict(self._edges))
