"""Half-edge labelings.

A solution to a node-edge-checkable problem is a mapping from half-edges to
output labels (Definition 6).  :class:`HalfEdgeLabeling` represents such a
mapping, possibly partial, and provides the per-node and per-edge label
multisets ("configurations") that the problem constraints are checked
against.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, Iterator, Mapping

from repro.semigraph.semigraph import EdgeId, HalfEdge, NodeId, SemiGraph


class HalfEdgeLabeling:
    """A (possibly partial) assignment of labels to half-edges."""

    def __init__(self, assignments: Mapping[HalfEdge, Any] | None = None) -> None:
        self._labels: dict[HalfEdge, Any] = dict(assignments or {})

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def assign(self, half_edge: HalfEdge, label: Any) -> None:
        """Assign ``label`` to ``half_edge``; re-assignment is an error."""
        if half_edge in self._labels and self._labels[half_edge] != label:
            raise ValueError(
                f"half-edge {half_edge!r} already labeled "
                f"{self._labels[half_edge]!r}, refusing to overwrite with {label!r}"
            )
        self._labels[half_edge] = label

    def merge(self, other: "HalfEdgeLabeling") -> "HalfEdgeLabeling":
        """Return a new labeling with the union of the two assignments.

        Overlapping half-edges must agree; a conflict raises ``ValueError``.
        """
        merged = HalfEdgeLabeling(self._labels)
        for half_edge, label in other.items():
            merged.assign(half_edge, label)
        return merged

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, half_edge: HalfEdge, default: Any = None) -> Any:
        """The label on ``half_edge``, or ``default`` if unlabeled."""
        return self._labels.get(half_edge, default)

    def is_labeled(self, half_edge: HalfEdge) -> bool:
        """Whether the half-edge has received a label."""
        return half_edge in self._labels

    def items(self) -> Iterator[tuple[HalfEdge, Any]]:
        """Iterate over ``(half_edge, label)`` pairs."""
        return iter(self._labels.items())

    def __len__(self) -> int:
        return len(self._labels)

    def __getitem__(self, half_edge: HalfEdge) -> Any:
        return self._labels[half_edge]

    def __contains__(self, half_edge: HalfEdge) -> bool:
        return half_edge in self._labels

    # ------------------------------------------------------------------
    # configurations
    # ------------------------------------------------------------------
    def node_configuration(
        self, semigraph: SemiGraph, node: NodeId, partial: bool = False
    ) -> tuple:
        """The multiset of labels on half-edges incident on ``node``.

        Returned as a sorted tuple (a canonical multiset representation).
        With ``partial=False``, every incident half-edge must be labeled.
        With ``partial=True``, unlabeled half-edges are skipped.
        """
        return self._configuration(semigraph.half_edges_of_node(node), partial)

    def edge_configuration(
        self, semigraph: SemiGraph, edge: EdgeId, partial: bool = False
    ) -> tuple:
        """The multiset of labels on half-edges incident on ``edge``."""
        return self._configuration(semigraph.half_edges_of_edge(edge), partial)

    def _configuration(self, half_edges: Iterable[HalfEdge], partial: bool) -> tuple:
        labels = []
        for half_edge in half_edges:
            if half_edge in self._labels:
                labels.append(self._labels[half_edge])
            elif not partial:
                raise KeyError(f"half-edge {half_edge!r} is unlabeled")
        return canonical_multiset(labels)

    def is_complete(self, semigraph: SemiGraph) -> bool:
        """Whether every half-edge of ``semigraph`` is labeled."""
        return all(h in self._labels for h in semigraph.half_edges())

    def restricted_to(self, semigraph: SemiGraph) -> "HalfEdgeLabeling":
        """The labeling restricted to half-edges present in ``semigraph``."""
        present = set(semigraph.half_edges())
        return HalfEdgeLabeling(
            {h: lab for h, lab in self._labels.items() if h in present}
        )

    def copy(self) -> "HalfEdgeLabeling":
        """An independent copy of the labeling."""
        return HalfEdgeLabeling(self._labels)

    def label_counts(self) -> Counter:
        """Counter of how many half-edges carry each label."""
        return Counter(self._labels.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HalfEdgeLabeling({len(self._labels)} half-edges labeled)"


def canonical_multiset(labels: Iterable[Any]) -> tuple:
    """Canonical (sorted) tuple representation of a label multiset.

    Labels of mixed types (e.g. the dummy label ``"D"`` together with
    integer pairs) are sorted by their ``repr`` to obtain a total order.
    """
    return tuple(sorted(labels, key=lambda lab: (type(lab).__name__, repr(lab))))
