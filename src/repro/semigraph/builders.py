"""Constructors for semi-graphs.

The transformation of the paper repeatedly builds sub-semi-graphs of the
input: the semi-graph ``T_C`` induced by the compressed nodes keeps every
edge with at least one compressed endpoint (those with exactly one drop to
rank 1), while the semi-graph ``G[E_2]`` induced by the typical edges keeps
only those edges with both endpoints.  This module provides those
constructions plus conversion from :mod:`networkx` graphs.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import networkx as nx

from repro.semigraph.semigraph import EdgeId, NodeId, SemiGraph


def edge_id_for(u: Hashable, v: Hashable) -> tuple:
    """Canonical edge identifier for the graph edge ``{u, v}``."""
    a, b = sorted((u, v), key=repr)
    return (a, b)


def semigraph_from_graph(graph: nx.Graph) -> SemiGraph:
    """Interpret a standard graph as a semi-graph (every edge has rank 2).

    Edge identifiers are the canonical sorted pairs produced by
    :func:`edge_id_for`, so sub-semi-graph constructions on the same graph
    share identifiers and labelings can be merged across them.
    """
    semigraph = SemiGraph(graph.nodes())
    for u, v in graph.edges():
        semigraph.add_edge(edge_id_for(u, v), (u, v))
    return semigraph


def restrict_to_nodes(
    semigraph: SemiGraph,
    nodes: Iterable[NodeId],
    keep_boundary_edges: bool = True,
) -> SemiGraph:
    """Sub-semi-graph on a node subset.

    With ``keep_boundary_edges=True`` this is the construction of the
    semi-graph ``T_C`` in the proof of Theorem 12: the node set is
    ``nodes``, the edge set contains every edge of ``semigraph`` with at
    least one endpoint in ``nodes``, and edges lose the endpoints outside
    ``nodes`` (dropping their rank accordingly).

    With ``keep_boundary_edges=False`` only edges with *all* endpoints in
    ``nodes`` are kept (ranks are preserved) — the ordinary induced
    sub-semi-graph ``G[P]``.
    """
    node_set = set(nodes)
    unknown = node_set - set(semigraph.nodes)
    if unknown:
        raise ValueError(f"nodes not in semi-graph: {sorted(unknown, key=repr)!r}")
    result = SemiGraph(node_set)
    for edge_id in semigraph.edges:
        endpoints = semigraph.endpoints(edge_id)
        inside = tuple(v for v in endpoints if v in node_set)
        if keep_boundary_edges:
            if inside:
                result.add_edge(edge_id, inside)
        else:
            if len(inside) == len(endpoints) and endpoints:
                result.add_edge(edge_id, endpoints)
    return result


def restrict_to_edges(semigraph: SemiGraph, edges: Iterable[EdgeId]) -> SemiGraph:
    """Sub-semi-graph induced by an edge subset (the paper's ``G[Q]``).

    The node set consists of every endpoint of a selected edge; ranks are
    preserved.
    """
    edge_set = set(edges)
    unknown = edge_set - set(semigraph.edges)
    if unknown:
        raise ValueError(f"edges not in semi-graph: {sorted(unknown, key=repr)!r}")
    nodes: set[NodeId] = set()
    for edge_id in edge_set:
        nodes.update(semigraph.endpoints(edge_id))
    result = SemiGraph(nodes)
    for edge_id in edge_set:
        result.add_edge(edge_id, semigraph.endpoints(edge_id))
    return result
