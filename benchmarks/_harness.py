"""Helpers shared by the experiment benchmarks."""

import os

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def record_table(name: str, table) -> None:
    """Print a MeasurementTable and persist it under benchmarks/results/."""
    text = table.render()
    print("\n" + text + "\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
