"""Helpers shared by the experiment benchmarks.

Two kinds of output are produced under ``benchmarks/results/``:

* plain-text :class:`MeasurementTable` renderings (``<name>.txt``) for
  humans and for EXPERIMENTS.md to quote, and
* machine-readable JSON (``<name>.json``) so the performance trajectory
  can be compared across PRs — the CI workflow uploads these as
  artifacts.  Every scenario entry records at least the scenario name,
  the instance size ``n``, the wall-clock seconds and (for simulator
  scenarios) the round and message counts.
"""

import json
import os
import platform
import sys
import time

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def record_table(name: str, table) -> None:
    """Print a MeasurementTable and persist it under benchmarks/results/."""
    text = table.render()
    print("\n" + text + "\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


def scenario_entry(
    scenario: str,
    n: int,
    wall_clock_s: float,
    rounds: int | None = None,
    messages: int | None = None,
    **extras,
) -> dict:
    """One machine-readable benchmark data point."""
    entry = {
        "scenario": scenario,
        "n": n,
        "wall_clock_s": round(wall_clock_s, 6),
        "rounds": rounds,
        "messages": messages,
    }
    entry.update(extras)
    return entry


def record_json(name: str, entries: list, meta: dict | None = None) -> str:
    """Persist benchmark entries as ``benchmarks/results/<name>.json``.

    Returns the path written.  The payload carries enough environment
    metadata to interpret wall-clock numbers across machines.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {
        "name": name,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "entries": list(entries),
    }
    if meta:
        payload["meta"] = dict(meta)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def timed(callable_):
    """Run ``callable_`` and return ``(result, wall_clock_seconds)``."""
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start
