"""Helpers shared by the experiment benchmarks.

Two kinds of output are produced under ``benchmarks/results/``:

* plain-text :class:`MeasurementTable` renderings (``<name>.txt``) for
  humans and for EXPERIMENTS.md to quote, and
* machine-readable JSON (``<name>.json``) so the performance trajectory
  can be compared across PRs — the CI workflow uploads these as
  artifacts.  Every scenario entry records at least the scenario name,
  the instance size ``n``, the wall-clock seconds and (for simulator
  scenarios) the round and message counts.

Each JSON payload is additionally mirrored to a canonical
``BENCH_<suffix>.json`` at the repository root (``bench_engine`` →
``BENCH_engine.json``), which is the documented, stable location the
per-PR perf trajectory is tracked from; the ``benchmarks/results/``
copies stay where the existing CI artifact uploads expect them.  The
root copies are gitignored — they are run outputs, not sources.
"""

import json
import os
import platform
import sys
import time

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def record_table(name: str, table) -> None:
    """Print a MeasurementTable and persist it under benchmarks/results/."""
    text = table.render()
    print("\n" + text + "\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


def scenario_entry(
    scenario: str,
    n: int,
    wall_clock_s: float,
    rounds: int | None = None,
    messages: int | None = None,
    **extras,
) -> dict:
    """One machine-readable benchmark data point."""
    entry = {
        "scenario": scenario,
        "n": n,
        "wall_clock_s": round(wall_clock_s, 6),
        "rounds": rounds,
        "messages": messages,
    }
    entry.update(extras)
    return entry


def canonical_bench_path(name: str) -> str:
    """The repo-root ``BENCH_*.json`` path for a benchmark ``name``.

    ``bench_engine`` → ``<repo>/BENCH_engine.json``; a name without the
    ``bench_`` prefix keeps its full form (``BENCH_<name>.json``).
    """
    suffix = name[len("bench_"):] if name.startswith("bench_") else name
    return os.path.join(REPO_ROOT, f"BENCH_{suffix}.json")


def record_json(name: str, entries: list, meta: dict | None = None) -> str:
    """Persist benchmark entries as ``benchmarks/results/<name>.json``.

    Returns the path written.  The payload carries enough environment
    metadata to interpret wall-clock numbers across machines.  The same
    payload is mirrored to the canonical repo-root ``BENCH_*.json``
    location (see :func:`canonical_bench_path`).
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {
        "name": name,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "entries": list(entries),
    }
    if meta:
        payload["meta"] = dict(meta)
    text = json.dumps(payload, indent=2, sort_keys=False) + "\n"
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    with open(canonical_bench_path(name), "w", encoding="utf-8") as handle:
        handle.write(text)
    return path


def timed(callable_):
    """Run ``callable_`` and return ``(result, wall_clock_seconds)``."""
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start
