"""E4 — Section 5.2: maximal matching on trees via the transformation.

Paper claim: combining Theorem 15 with the ``O(Δ + log* n)`` maximal
matching algorithm of [PR01] re-derives, in a generic manner, the tight
``O(log n / log log n)`` upper bound for maximal matching on trees [BE13].

What this benchmark regenerates: measured rounds of the Theorem 15 pipeline
for maximal matching over a sweep of trees and bounded-arboricity graphs,
the Lemma 17 sequential solver in isolation, and the reference
``log n / log log n`` curve.
"""

import pytest

from _harness import record_table
from repro.analysis import MeasurementTable
from repro.baselines import MaximalMatchingAlgorithm, maximal_matching
from repro.core import solve_on_bounded_arboricity
from repro.core.complexity import mm_mis_tree_bound
from repro.generators import balanced_regular_tree, forest_union, random_tree
from repro.problems.classic import is_maximal_matching


def run_instance(graph, arboricity=1):
    result = solve_on_bounded_arboricity(graph, arboricity, MaximalMatchingAlgorithm())
    assert result.verification.ok
    assert is_maximal_matching(graph, [tuple(e) for e in result.classic])
    return result


def test_e4_report():
    table = MeasurementTable(
        "E4: maximal matching via Theorem 15 (reproducing the O(log n / log log n) bound)",
        [
            "instance",
            "n",
            "a",
            "k",
            "matching size",
            "total rounds",
            "direct truly-local rounds",
            "log n / log log n",
        ],
    )
    instances = [
        ("random tree", random_tree(300, seed=51), 1),
        ("random tree", random_tree(1000, seed=52), 1),
        ("random tree", random_tree(3000, seed=53), 1),
        ("4-regular balanced", balanced_regular_tree(4, 5), 1),
        ("2 forests, n=500", forest_union(500, 2, seed=54), 2),
        ("3 forests, n=500", forest_union(500, 3, seed=55), 3),
    ]
    for name, graph, arboricity in instances:
        result = run_instance(graph, arboricity)
        direct = maximal_matching(graph).rounds
        table.add_row(
            name,
            graph.number_of_nodes(),
            arboricity,
            result.k,
            len(result.classic),
            result.rounds,
            direct,
            round(mm_mis_tree_bound(graph.number_of_nodes()), 1),
        )
    record_table("e4_maximal_matching", table)


def test_e4_matching_size_at_least_half_of_maximum():
    """Any maximal matching is a 2-approximation of the maximum matching."""
    import networkx as nx

    tree = random_tree(500, seed=61)
    result = run_instance(tree)
    maximum = len(nx.max_weight_matching(tree, maxcardinality=True))
    assert len(result.classic) >= maximum / 2


@pytest.mark.parametrize("n", [300, 1000])
def test_e4_benchmark_transformed_matching(benchmark, n):
    tree = random_tree(n, seed=71)
    result = benchmark(lambda: run_instance(tree))
    assert result.rounds > 0
