"""E8 — the complexity model: g(n), the Theorem 1 predictions and the separation.

Paper context ("Concrete implications", Section 1.1): plugging the best
known truly local complexities into the transformation yields

* ``f(Δ) = Θ(Δ)`` (MIS, maximal matching) → ``Θ(log n / log log n)`` on trees,
* ``f(Δ) = O(√Δ log Δ)`` ((Δ+1)-colouring) → no improvement over [BE10] yet,
* ``f(Δ) = O(log^{12} Δ)`` ((edge-degree+1)-edge colouring) →
  ``O(log^{12/13} n)`` on trees — Theorem 3 and the separation from the
  ``Ω(log n / log log n)`` problems.

What this benchmark regenerates:

* a table of ``g(n)`` and ``f(g(n))`` for the complexity functions above,
* the asymptotic (log-space) comparison against the barrier, locating the
  crossover, and
* the fitted growth exponent of the log^12-based prediction, which must be
  12/13 ≈ 0.923.
"""

import math

import pytest

from _harness import record_table
from repro.analysis import MeasurementTable
from repro.core.complexity import (
    linear,
    log_star,
    mm_mis_tree_bound_from_log2,
    polylog,
    predicted_rounds_tree_from_log2,
    solve_g,
    solve_g_from_log2,
    sqrt_delta_log,
)

COMPLEXITIES = {
    "f=Δ (MIS/matching)": linear(),
    "f=√Δ·logΔ (Δ+1 colouring)": sqrt_delta_log(),
    "f=log²Δ (hypothetical)": polylog(2),
    "f=log¹²Δ (BBKO22b edge colouring)": polylog(12),
}


def test_e8_g_table():
    table = MeasurementTable(
        "E8a: the function g(n) with g^{f(g)} = n, and the induced bound f(g(n))",
        ["n", "f", "g(n)", "f(g(n))", "log* n"],
    )
    for exponent in (10, 20, 40, 80):
        n = 2.0**exponent
        for name, f in COMPLEXITIES.items():
            g = solve_g(f, n)
            table.add_row(f"2^{exponent}", name, round(g, 2), round(f(g), 2), log_star(n))
    record_table("e8_g_table", table)


def test_e8_separation_report():
    table = MeasurementTable(
        "E8b: Theorem 1 predictions vs the log n / log log n barrier (log-space, n = 2^L)",
        ["L = log2 n", "barrier"] + list(COMPLEXITIES) + ["log^12 beats barrier?"],
    )
    for L in (64.0, 1e4, 1e8, 1e16, 1e24, 1e32, 1e40):
        barrier = mm_mis_tree_bound_from_log2(L)
        row = [f"{L:g}", round(barrier, 1)]
        predictions = {}
        for name, f in COMPLEXITIES.items():
            value = predicted_rounds_tree_from_log2(f, L)
            predictions[name] = value
            row.append(f"{value:.3g}")
        row.append(predictions["f=log¹²Δ (BBKO22b edge colouring)"] < barrier)
        table.add_row(*row)
    record_table("e8_separation", table)
    # The separation holds in the asymptotic regime.
    assert predicted_rounds_tree_from_log2(polylog(12), 1e40) < mm_mis_tree_bound_from_log2(1e40)
    # The linear-f prediction tracks the barrier (same Θ-class), never beats it
    # by more than a constant factor.
    for L in (1e4, 1e8, 1e16):
        ratio = predicted_rounds_tree_from_log2(linear(), L) / mm_mis_tree_bound_from_log2(L)
        assert 0.5 <= ratio <= 3.0


def test_e8_growth_exponent_matches_twelve_thirteenths():
    log2_ns = [float(10**e) for e in range(8, 36, 2)]
    values = [predicted_rounds_tree_from_log2(polylog(12), L) for L in log2_ns]
    xs = [math.log(L) for L in log2_ns]
    ys = [math.log(v) for v in values]
    slope = (ys[-1] - ys[0]) / (xs[-1] - xs[0])
    assert abs(slope - 12 / 13) < 0.02


def test_e8_concrete_implications_examples():
    """The intro's examples: improving (Δ+1)-colouring to O(log^5 Δ) would give
    O(log^{5/6} n) on trees; improving (2Δ-1)-edge colouring to O(log Δ) would
    give O(√log n)."""
    L = 1e12
    five = predicted_rounds_tree_from_log2(polylog(5), L)
    assert abs(math.log(five) / math.log(L) - 5 / 6) < 0.03
    # For f = log Δ the cut-off degree is 2^sqrt(L); choose L small enough
    # that this degree is still representable as a float.
    L_small = 1e5
    one = predicted_rounds_tree_from_log2(polylog(1), L_small)
    assert abs(math.log(one) / math.log(L_small) - 1 / 2) < 0.03


@pytest.mark.parametrize("exponent", [12, 2])
def test_e8_benchmark_solve_g(benchmark, exponent):
    f = polylog(exponent)
    value = benchmark(lambda: solve_g_from_log2(f, 1e24))
    assert value > 1.0
