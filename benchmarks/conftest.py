"""Shared infrastructure for the experiment harness.

Each ``bench_e*.py`` module reproduces one experiment from DESIGN.md /
EXPERIMENTS.md.  Benchmarks use pytest-benchmark for timing; the scientific
output (round counts, decomposition statistics, analytic predictions) is
printed as plain-text tables and also written to ``benchmarks/results/`` so
that EXPERIMENTS.md can reference the numbers.
"""

import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def record_table(name: str, table) -> None:
    """Print a MeasurementTable and persist it under benchmarks/results/."""
    text = table.render()
    print("\n" + text + "\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
