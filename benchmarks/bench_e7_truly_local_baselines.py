"""E7 — the transformation's inputs: truly local algorithms scale with Δ, not n.

Paper context: the transformation consumes algorithms with a runtime of
``O(f(Δ) + log* n)`` rounds.  This experiment verifies that the implemented
baselines actually have that shape: their measured round counts are flat in
``n`` (up to the log*-term) and grow with Δ.

What this benchmark regenerates:

* an n-sweep at fixed maximum degree (rounds stay essentially constant), and
* a Δ-sweep at fixed n (rounds grow polynomially in Δ),

for the four baselines ((deg+1)-colouring, (edge-degree+1)-edge colouring,
MIS, maximal matching).
"""

import pytest

from _harness import record_table
from repro.analysis import MeasurementTable
from repro.baselines import (
    deg_plus_one_coloring,
    edge_degree_plus_one_coloring,
    maximal_independent_set,
    maximal_matching,
)
from repro.core.complexity import log_star
from repro.generators import random_graph_with_max_degree, random_tree

BASELINES = {
    "(deg+1)-colouring": lambda g: deg_plus_one_coloring(g).rounds,
    "(edge-degree+1)-edge colouring": lambda g: edge_degree_plus_one_coloring(g).rounds,
    "MIS": lambda g: maximal_independent_set(g).rounds,
    "maximal matching": lambda g: maximal_matching(g).rounds,
}


def test_e7_n_sweep_report():
    table = MeasurementTable(
        "E7a: truly local baselines, n-sweep at max degree 4 (rounds ~ f(4) + log* n)",
        ["n", "log* n"] + list(BASELINES),
    )
    for n in (100, 400, 1600):
        graph = random_graph_with_max_degree(n, 4, seed=7)
        row = [n, log_star(n)]
        for runner in BASELINES.values():
            row.append(runner(graph))
        table.add_row(*row)
    record_table("e7_n_sweep", table)


def test_e7_degree_sweep_report():
    table = MeasurementTable(
        "E7b: truly local baselines, Δ-sweep at n=300 (rounds grow with Δ)",
        ["max degree"] + list(BASELINES),
    )
    rows = {}
    for delta in (3, 6, 12):
        graph = random_graph_with_max_degree(300, delta, seed=13)
        row = [delta]
        for name, runner in BASELINES.items():
            rounds = runner(graph)
            row.append(rounds)
            rows.setdefault(name, []).append(rounds)
        table.add_row(*row)
    record_table("e7_degree_sweep", table)
    for name, values in rows.items():
        assert values[-1] > values[0], f"{name} rounds should grow with the degree"


def test_e7_rounds_flat_in_n_on_paths():
    import networkx as nx

    rounds = [maximal_independent_set(nx.path_graph(n)).rounds for n in (100, 1000)]
    # Identical maximum degree: only the log*-term may differ.
    assert abs(rounds[1] - rounds[0]) <= 3


@pytest.mark.parametrize("name", sorted(BASELINES))
def test_e7_benchmark_baselines(benchmark, name):
    graph = random_graph_with_max_degree(400, 6, seed=17)
    rounds = benchmark(lambda: BASELINES[name](graph))
    assert rounds > 0
