"""E3 — Theorem 12 / Theorem 1: node problems (MIS, (deg+1)-colouring) on trees.

Paper claim: any node problem in the class P1 with a truly local algorithm
of complexity ``O(f(Δ) + log* n)`` can be solved on trees in
``O(f(g(n)) + log* n)`` rounds, where ``g^{f(g)} = n``.  For MIS (and its
tight ``f(Δ) = Θ(Δ)``) this reproduces the known ``Θ(log n / log log n)``
upper bound on trees.

What this benchmark regenerates: measured rounds and per-phase breakdown of
the Theorem 12 pipeline for MIS and (deg+1)-colouring over a sweep of tree
families, plus the direct (untransformed) truly local algorithm on the same
instances for comparison — the transformation's decomposition replaces the
dependence on Δ by a dependence on ``g(n)``.
"""

import math

import pytest

from _harness import record_table
from repro.analysis import MeasurementTable
from repro.baselines import (
    DegPlusOneColoringAlgorithm,
    MISAlgorithm,
    maximal_independent_set,
)
from repro.core import solve_on_tree
from repro.core.complexity import mm_mis_tree_bound
from repro.generators import balanced_regular_tree, caterpillar, random_tree
from repro.problems.classic import is_deg_plus_one_coloring, is_maximal_independent_set


def test_e3_report():
    table = MeasurementTable(
        "E3: node problems on trees via Theorem 12",
        [
            "instance",
            "n",
            "max degree",
            "problem",
            "k",
            "decomposition",
            "A-phase",
            "finish",
            "total rounds",
            "direct truly-local rounds",
            "log n / log log n",
        ],
    )
    instances = [
        ("random tree", random_tree(300, seed=21)),
        ("random tree", random_tree(1000, seed=22)),
        ("random tree", random_tree(3000, seed=23)),
        ("3-regular balanced", balanced_regular_tree(3, 7)),
        ("8-regular balanced", balanced_regular_tree(8, 3)),
        ("caterpillar", caterpillar(200, 5)),
    ]
    for name, tree in instances:
        n = tree.number_of_nodes()
        max_degree = max(d for _, d in tree.degree())
        direct_rounds = maximal_independent_set(tree).rounds
        for label, algorithm, verifier in (
            ("MIS", MISAlgorithm(), is_maximal_independent_set),
            ("(deg+1)-colouring", DegPlusOneColoringAlgorithm(), is_deg_plus_one_coloring),
        ):
            result = solve_on_tree(tree, algorithm)
            assert result.verification.ok
            assert verifier(tree, result.classic)
            breakdown = result.ledger.breakdown()
            table.add_row(
                name,
                n,
                max_degree,
                label,
                result.k,
                breakdown.get("decomposition", 0),
                breakdown.get("truly-local algorithm A", 0),
                breakdown.get("raked components (gather & solve)", 0),
                result.rounds,
                direct_rounds if label == "MIS" else "-",
                round(mm_mis_tree_bound(n), 1),
            )
    record_table("e3_node_problems_trees", table)


def test_e3_transformed_mis_beats_direct_on_high_degree_trees():
    """On a high-degree tree the direct O(Δ²+log* n) algorithm pays for Δ,
    while the transformed algorithm only pays for g(n) — the whole point of
    the transformation."""
    tree = balanced_regular_tree(16, 2)  # small but very high degree
    direct = maximal_independent_set(tree).rounds
    transformed = solve_on_tree(tree, MISAlgorithm()).rounds
    assert transformed < direct


def test_e3_decomposition_rounds_scale_like_log_n():
    sizes = [200, 800, 3200]
    decomposition_rounds = []
    for n in sizes:
        result = solve_on_tree(random_tree(n, seed=31), MISAlgorithm(), k=2)
        decomposition_rounds.append(result.ledger.breakdown()["decomposition"])
    ratios = [
        rounds / math.log2(n) for rounds, n in zip(decomposition_rounds, sizes)
    ]
    assert max(ratios) <= 4 * min(ratios)


@pytest.mark.parametrize("n", [300, 1000])
def test_e3_benchmark_transformed_mis(benchmark, n):
    tree = random_tree(n, seed=41)
    result = benchmark(lambda: solve_on_tree(tree, MISAlgorithm()))
    assert result.verification.ok
