"""E5 — Lemmas 10 and 11: quality of the rake-and-compress decomposition.

Paper claims (for Algorithm 1 with parameter ``k``):

* Lemma 9: every node is marked within ``⌈log_k n⌉ + 1`` iterations;
* Lemma 10: the graph induced by edges with a compressed lower endpoint has
  maximum degree at most ``k``;
* Lemma 11: every connected component of the raked nodes has diameter at
  most ``4(log_k n + 1) + 2``.

What this benchmark regenerates: the measured iteration counts, induced
degrees and component diameters over a (tree family × k) sweep, next to the
paper's bounds.  This doubles as the k-ablation called out in DESIGN.md.
"""

import pytest

from _harness import record_table
from repro.analysis import MeasurementTable
from repro.decomposition import rake_and_compress
from repro.generators import balanced_regular_tree, caterpillar, random_tree, spider


def instances():
    return [
        ("random n=1000", random_tree(1000, seed=81)),
        ("random n=4000", random_tree(4000, seed=82)),
        ("3-regular depth 8", balanced_regular_tree(3, 8)),
        ("6-regular depth 4", balanced_regular_tree(6, 4)),
        ("caterpillar 300x3", caterpillar(300, 3)),
        ("spider 30x30", spider(30, 30)),
    ]


def test_e5_report():
    table = MeasurementTable(
        "E5: rake-and-compress decomposition quality (Algorithm 1, Lemmas 9-11)",
        [
            "instance",
            "n",
            "k",
            "iterations",
            "iteration bound",
            "compress-edge max degree (<= k)",
            "max raked diameter",
            "Lemma 11 bound",
        ],
    )
    for name, tree in instances():
        for k in (2, 4, 16):
            decomposition = rake_and_compress(tree, k)
            diameters = decomposition.raked_component_diameters()
            table.add_row(
                name,
                tree.number_of_nodes(),
                k,
                decomposition.iterations,
                decomposition.theoretical_iteration_bound,
                decomposition.compress_edge_max_degree(),
                max(diameters) if diameters else 0,
                decomposition.lemma_11_diameter_bound(),
            )
            assert decomposition.iterations <= decomposition.theoretical_iteration_bound
            assert decomposition.compress_edge_max_degree() <= k
            bound = decomposition.lemma_11_diameter_bound()
            assert all(d <= bound for d in diameters)
    record_table("e5_rake_compress", table)


def test_e5_larger_k_means_fewer_iterations():
    tree = balanced_regular_tree(3, 9)
    iterations = [rake_and_compress(tree, k).iterations for k in (2, 4, 8, 32)]
    assert iterations == sorted(iterations, reverse=True)


@pytest.mark.parametrize("k", [2, 8])
def test_e5_benchmark_rake_compress(benchmark, k):
    tree = random_tree(2000, seed=91)
    decomposition = benchmark(lambda: rake_and_compress(tree, k))
    assert decomposition.iterations >= 1
