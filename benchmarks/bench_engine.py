"""BENCH — the simulation-engine regression benchmark.

Records the wall-clock, round and message trajectory of the hot paths
every experiment (E1–E8) funnels through:

* ``run_synchronous`` on seeded random trees and bounded-degree graphs
  (Linial colouring, Cole–Vishkin forest 3-colouring, colour-class MIS),
* the decomposition processes (rake-and-compress, Algorithm 3), and
* the bounded-degree random-graph generator.

It also re-runs the seed engine (``run_synchronous_reference``) on the
n=10⁴ random tree and asserts a ≥5× speedup with bit-identical
``RunResult`` fields, so a future PR cannot silently regress the engine.

Run the full sweep::

    PYTHONPATH=src python benchmarks/bench_engine.py

or through pytest (``pytest benchmarks/bench_engine.py``).  Set
``BENCH_SMOKE=1`` for the small CI-sized instances.  Results land in
``benchmarks/results/bench_engine.json`` (machine-readable) and
``benchmarks/results/bench_engine.txt`` (table).
"""

import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from _harness import record_json, record_table, scenario_entry, timed  # noqa: E402

from repro.analysis import MeasurementTable  # noqa: E402
from repro.baselines.forest_coloring import ForestThreeColoring  # noqa: E402
from repro.baselines.linial import LinialColoring  # noqa: E402
from repro.baselines import maximal_independent_set  # noqa: E402
from repro.decomposition import arboricity_decomposition, rake_and_compress  # noqa: E402
from repro.generators import (  # noqa: E402
    bfs_forest_parents,
    forest_union,
    random_graph_with_max_degree,
    random_tree,
)
from repro.local import Network, run_synchronous, run_synchronous_reference  # noqa: E402

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: Sizes of the engine sweep; the last tree size is the speedup scenario.
TREE_SIZES = [1000, 3000] if SMOKE else [1000, 10000, 30000]
SPEEDUP_N = 2000 if SMOKE else 10000
SPEEDUP_FACTOR = 5.0




def _engine_scenarios():
    """Fast-engine scenarios: (scenario name, n, rounds, messages, seconds)."""
    rows = []
    for n in TREE_SIZES:
        tree = random_tree(n, seed=42)
        network = Network(tree)
        result, seconds = timed(lambda: run_synchronous(network, LinialColoring()))
        rows.append(("sync/linial/random-tree", n, result.rounds, result.messages_sent, seconds))

        parents = bfs_forest_parents(tree)
        forest_network = Network(tree, node_inputs=parents)
        result, seconds = timed(
            lambda: run_synchronous(forest_network, ForestThreeColoring())
        )
        rows.append(
            ("sync/forest-3-coloring/random-tree", n, result.rounds, result.messages_sent, seconds)
        )

    n = 1000 if SMOKE else 5000
    graph = random_graph_with_max_degree(n, 8, seed=7)
    run, seconds = timed(lambda: maximal_independent_set(graph))
    rows.append(("sync/color-class-mis/bounded-degree", n, run.rounds, None, seconds))
    return rows


def _decomposition_scenarios():
    """Decomposition / generator scenarios: (scenario, n, rounds, seconds)."""
    rows = []
    n = 3000 if SMOKE else 30000
    tree = random_tree(n, seed=5)
    decomposition, seconds = timed(lambda: rake_and_compress(tree, k=8))
    rows.append(("decomposition/rake-compress/random-tree", n, decomposition.rounds, seconds))

    n = 1000 if SMOKE else 10000
    graph = forest_union(n, arboricity=3, seed=11)
    decomposition, seconds = timed(
        lambda: arboricity_decomposition(graph, arboricity=3, k=15)
    )
    rows.append(("decomposition/arboricity/forest-union", n, decomposition.rounds, seconds))

    n = 2000 if SMOKE else 20000
    _, seconds = timed(lambda: random_graph_with_max_degree(n, 8, seed=3))
    rows.append(("generator/random-graph-max-degree", n, None, seconds))
    return rows


def _speedup_scenario():
    """Fast vs. seed engine on the n=SPEEDUP_N random tree.

    Returns (entries, speedups); asserts identical RunResult fields.
    """
    tree = random_tree(SPEEDUP_N, seed=42)
    parents = bfs_forest_parents(tree)
    entries = []
    speedups = {}
    for algorithm_factory, inputs, name in (
        (LinialColoring, None, "linial"),
        (ForestThreeColoring, parents, "forest-3-coloring"),
    ):
        network = Network(tree, node_inputs=inputs)
        fast, fast_seconds = timed(lambda: run_synchronous(network, algorithm_factory()))
        reference, reference_seconds = timed(
            lambda: run_synchronous_reference(network, algorithm_factory())
        )
        assert fast.rounds == reference.rounds
        assert fast.messages_sent == reference.messages_sent
        assert fast.outputs == reference.outputs
        speedup = reference_seconds / fast_seconds
        speedups[name] = speedup
        entries.append(
            scenario_entry(
                f"speedup/{name}/random-tree",
                SPEEDUP_N,
                fast_seconds,
                rounds=fast.rounds,
                messages=fast.messages_sent,
                reference_wall_clock_s=round(reference_seconds, 6),
                speedup=round(speedup, 2),
            )
        )
    return entries, speedups


def run_bench(check_speedup: bool = True) -> list:
    """Run every scenario, write table + JSON, return the JSON entries."""
    table = MeasurementTable(
        "BENCH: simulation engine (wall-clock per scenario)",
        ["scenario", "n", "wall clock [s]", "rounds", "messages"],
    )
    entries = []

    for scenario, n, rounds, messages, seconds in _engine_scenarios():
        entries.append(scenario_entry(scenario, n, seconds, rounds=rounds, messages=messages))
        table.add_row(scenario, n, seconds, rounds, messages if messages is not None else "-")

    for scenario, n, rounds, seconds in _decomposition_scenarios():
        entries.append(scenario_entry(scenario, n, seconds, rounds=rounds))
        table.add_row(scenario, n, seconds, rounds if rounds is not None else "-", "-")

    speedup_entries, speedups = _speedup_scenario()
    for entry in speedup_entries:
        entries.append(entry)
        table.add_row(
            f"{entry['scenario']} ({entry['speedup']}x vs seed)",
            entry["n"],
            entry["wall_clock_s"],
            entry["rounds"],
            entry["messages"],
        )

    record_table("bench_engine", table)
    record_json(
        "bench_engine",
        entries,
        meta={"smoke": SMOKE, "speedup_target": SPEEDUP_FACTOR, "speedups": speedups},
    )
    if check_speedup:
        for name, speedup in speedups.items():
            assert speedup >= SPEEDUP_FACTOR, (
                f"engine speedup regressed: {name} is only {speedup:.1f}x "
                f"(target ≥{SPEEDUP_FACTOR}x) over the seed engine"
            )
    return entries


def test_bench_engine_and_speedup():
    entries = run_bench(check_speedup=True)
    assert any(entry["scenario"].startswith("speedup/") for entry in entries)


if __name__ == "__main__":
    run_bench(check_speedup=True)
    print("bench_engine: all scenarios recorded, speedup target met")
