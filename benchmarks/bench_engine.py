"""BENCH — the simulation-engine regression benchmark.

Records the wall-clock, round and message trajectory of the hot paths
every experiment (E1–E8) funnels through, now **per engine backend**:
each simulator and decomposition scenario that has an array kernel is
timed on both the interpreted active-set engine and the vectorized NumPy
engine, and the JSON output carries **one record per (scenario, engine)
pair** with an explicit ``engine`` field.

Two regression gates are asserted:

* the interpreted engine stays ≥5× faster than the seed engine
  (``run_synchronous_reference``) on the n=10⁴ random tree, with
  bit-identical ``RunResult`` fields, and
* the vectorized engine stays above per-scenario speedup floors over the
  interpreted engine at n=10⁵ (forest 3-colouring ≥10×; Linial,
  colour-class MIS and Δ+1 colour reduction ≥5×), again with
  bit-identical results.

In full (non-smoke) mode the vectorized backend additionally runs the
million-node instances the interpreted engine cannot reach in reasonable
time — those records demonstrate the n=10⁶ scale and have no interpreted
counterpart.

Run the full sweep::

    PYTHONPATH=src python benchmarks/bench_engine.py

or through pytest (``pytest benchmarks/bench_engine.py``).  Set
``BENCH_SMOKE=1`` for the small CI-sized instances.  Results land in
``benchmarks/results/bench_engine.json`` (machine-readable) and
``benchmarks/results/bench_engine.txt`` (table).
"""

import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from _harness import record_json, record_table, scenario_entry, timed  # noqa: E402

from repro.analysis import MeasurementTable  # noqa: E402
from repro.baselines.color_reduction import ColorClassReduction  # noqa: E402
from repro.baselines.coloring import deg_plus_one_coloring  # noqa: E402
from repro.baselines.forest_coloring import ForestThreeColoring  # noqa: E402
from repro.baselines.linial import LinialColoring  # noqa: E402
from repro.baselines.mis import ColorClassMIS  # noqa: E402
from repro.baselines import maximal_independent_set  # noqa: E402
from repro.decomposition import arboricity_decomposition, rake_and_compress  # noqa: E402
from repro.generators import (  # noqa: E402
    bfs_forest_parents,
    forest_union,
    random_graph_with_max_degree,
    random_tree,
)
from repro.local import (  # noqa: E402
    EnginePolicy,
    Network,
    run_synchronous,
    run_synchronous_reference,
)
from repro.local.vectorized import run_vectorized  # noqa: E402

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: Sizes of the dual-engine sweep; the last tree size is the seed-speedup
#: scenario's size in full mode.
TREE_SIZES = [1000, 3000] if SMOKE else [1000, 10000, 30000]
SPEEDUP_N = 2000 if SMOKE else 10000
SPEEDUP_FACTOR = 5.0

#: Size of the vectorized-vs-interpreted speedup gate and its
#: per-scenario floors.  Measured at n=10⁵: forest ~50×, Linial ~10×;
#: the floors leave headroom for machine noise.
VEC_SPEEDUP_N = 20000 if SMOKE else 100_000
VEC_SPEEDUP_FLOORS = (
    {
        "linial": 3.0,
        "forest-3-coloring": 5.0,
        "color-class-mis": 3.0,
        "color-class-reduction": 3.0,
    }
    if SMOKE
    else {
        "linial": 5.0,
        "forest-3-coloring": 10.0,
        "color-class-mis": 5.0,
        "color-class-reduction": 5.0,
    }
)

#: Full-mode-only demonstration size for the vectorized backend.
FULL_SCALE_N = 1_000_000


def _engine_scenarios():
    """Dual-engine sweep: one entry per (scenario, engine) pair."""
    entries = []
    for n in TREE_SIZES:
        tree = random_tree(n, seed=42)
        parents = bfs_forest_parents(tree)
        for scenario, algorithm_factory, inputs in (
            ("sync/linial/random-tree", LinialColoring, None),
            ("sync/forest-3-coloring/random-tree", ForestThreeColoring, parents),
        ):
            network = Network(tree, node_inputs=inputs)
            for engine, runner in (
                ("interpreted", run_synchronous),
                ("vectorized", run_vectorized),
            ):
                result, seconds = timed(lambda: runner(network, algorithm_factory()))
                entries.append(scenario_entry(
                    scenario, n, seconds,
                    rounds=result.rounds, messages=result.messages_sent,
                    engine=engine,
                ))

    n = 1000 if SMOKE else 5000
    graph = random_graph_with_max_degree(n, 8, seed=7)
    for engine in ("interpreted", "vectorized"):
        with EnginePolicy(engine):
            run, seconds = timed(lambda: maximal_independent_set(graph))
        entries.append(scenario_entry(
            "sync/color-class-mis/bounded-degree", n, seconds,
            rounds=run.rounds, engine=engine,
        ))
    return entries


def _decomposition_scenarios():
    """Decomposition scenarios on both engines, plus the generator."""
    entries = []
    n = 3000 if SMOKE else 30000
    tree = random_tree(n, seed=5)
    for engine in ("interpreted", "vectorized"):
        with EnginePolicy(engine):
            decomposition, seconds = timed(lambda: rake_and_compress(tree, k=8))
        entries.append(scenario_entry(
            "decomposition/rake-compress/random-tree", n, seconds,
            rounds=decomposition.rounds, engine=engine,
        ))

    n = 1000 if SMOKE else 10000
    graph = forest_union(n, arboricity=3, seed=11)
    for engine in ("interpreted", "vectorized"):
        with EnginePolicy(engine):
            decomposition, seconds = timed(
                lambda: arboricity_decomposition(graph, arboricity=3, k=15)
            )
        entries.append(scenario_entry(
            "decomposition/arboricity/forest-union", n, seconds,
            rounds=decomposition.rounds, engine=engine,
        ))

    n = 2000 if SMOKE else 20000
    _, seconds = timed(lambda: random_graph_with_max_degree(n, 8, seed=3))
    entries.append(scenario_entry("generator/random-graph-max-degree", n, seconds))
    return entries


def _speedup_scenario():
    """Fast vs. seed engine on the n=SPEEDUP_N random tree.

    Returns (entries, speedups); asserts identical RunResult fields.
    """
    tree = random_tree(SPEEDUP_N, seed=42)
    parents = bfs_forest_parents(tree)
    entries = []
    speedups = {}
    for algorithm_factory, inputs, name in (
        (LinialColoring, None, "linial"),
        (ForestThreeColoring, parents, "forest-3-coloring"),
    ):
        network = Network(tree, node_inputs=inputs)
        fast, fast_seconds = timed(
            lambda: run_synchronous(network, algorithm_factory())
        )
        reference, reference_seconds = timed(
            lambda: run_synchronous_reference(network, algorithm_factory())
        )
        assert fast.rounds == reference.rounds
        assert fast.messages_sent == reference.messages_sent
        assert fast.outputs == reference.outputs
        speedup = reference_seconds / fast_seconds
        speedups[name] = speedup
        entries.append(
            scenario_entry(
                f"speedup/{name}/random-tree",
                SPEEDUP_N,
                fast_seconds,
                rounds=fast.rounds,
                messages=fast.messages_sent,
                engine="interpreted",
                reference_wall_clock_s=round(reference_seconds, 6),
                speedup=round(speedup, 2),
            )
        )
    return entries, speedups


def _vectorized_speedup_scenario():
    """Vectorized vs. interpreted engine on the n=VEC_SPEEDUP_N tree.

    Returns (entries, speedups); asserts bit-identical RunResult fields.
    One entry per engine, the vectorized one carrying the speedup.
    """
    tree = random_tree(VEC_SPEEDUP_N, seed=42)
    parents = bfs_forest_parents(tree)
    coloring = deg_plus_one_coloring(tree)
    num_classes = max(coloring.colours.values(), default=1)
    colour_inputs = dict(coloring.colours)
    shared = {"num_classes": num_classes}
    entries = []
    speedups = {}
    for algorithm_factory, network, name in (
        (LinialColoring, Network(tree), "linial"),
        (
            ForestThreeColoring,
            Network(tree, node_inputs=parents),
            "forest-3-coloring",
        ),
        (
            ColorClassMIS,
            Network(tree, node_inputs=colour_inputs, shared=shared),
            "color-class-mis",
        ),
        (
            ColorClassReduction,
            Network(tree, node_inputs=colour_inputs, shared=shared),
            "color-class-reduction",
        ),
    ):
        vectorized, vectorized_seconds = timed(
            lambda: run_vectorized(network, algorithm_factory())
        )
        interpreted, interpreted_seconds = timed(
            lambda: run_synchronous(network, algorithm_factory())
        )
        assert vectorized.rounds == interpreted.rounds
        assert vectorized.messages_sent == interpreted.messages_sent
        assert vectorized.outputs == interpreted.outputs
        speedup = interpreted_seconds / vectorized_seconds
        speedups[name] = speedup
        scenario = f"vectorized-speedup/{name}/random-tree"
        entries.append(scenario_entry(
            scenario, VEC_SPEEDUP_N, interpreted_seconds,
            rounds=interpreted.rounds, messages=interpreted.messages_sent,
            engine="interpreted",
        ))
        entries.append(scenario_entry(
            scenario, VEC_SPEEDUP_N, vectorized_seconds,
            rounds=vectorized.rounds, messages=vectorized.messages_sent,
            engine="vectorized",
            speedup=round(speedup, 2),
        ))
    return entries, speedups


def _full_scale_scenarios():
    """Million-node vectorized runs the interpreted engine cannot reach."""
    entries = []
    tree = random_tree(FULL_SCALE_N, seed=42)
    parents = bfs_forest_parents(tree)
    for algorithm_factory, inputs, name in (
        (LinialColoring, None, "linial"),
        (ForestThreeColoring, parents, "forest-3-coloring"),
    ):
        network = Network(tree, node_inputs=inputs)
        result, seconds = timed(lambda: run_vectorized(network, algorithm_factory()))
        entries.append(scenario_entry(
            f"full-scale/{name}/random-tree", FULL_SCALE_N, seconds,
            rounds=result.rounds, messages=result.messages_sent,
            engine="vectorized",
        ))
    return entries


def run_bench(check_speedup: bool = True) -> list:
    """Run every scenario, write table + JSON, return the JSON entries."""
    table = MeasurementTable(
        "BENCH: simulation engine (wall-clock per scenario and engine)",
        ["scenario", "engine", "n", "wall clock [s]", "rounds", "messages"],
    )
    entries = []

    def add(entry, label=None):
        entries.append(entry)
        table.add_row(
            label if label is not None else entry["scenario"],
            entry.get("engine") or "-",
            entry["n"],
            entry["wall_clock_s"],
            entry["rounds"] if entry["rounds"] is not None else "-",
            entry["messages"] if entry["messages"] is not None else "-",
        )

    for entry in _engine_scenarios():
        add(entry)
    for entry in _decomposition_scenarios():
        add(entry)

    speedup_entries, speedups = _speedup_scenario()
    for entry in speedup_entries:
        add(entry, label=f"{entry['scenario']} ({entry['speedup']}x vs seed)")

    vec_entries, vec_speedups = _vectorized_speedup_scenario()
    for entry in vec_entries:
        label = None
        if "speedup" in entry:
            label = f"{entry['scenario']} ({entry['speedup']}x vs interpreted)"
        add(entry, label=label)

    if not SMOKE:
        for entry in _full_scale_scenarios():
            add(entry)

    record_table("bench_engine", table)
    record_json(
        "bench_engine",
        entries,
        meta={
            "smoke": SMOKE,
            "speedup_target": SPEEDUP_FACTOR,
            "speedups": speedups,
            "vectorized_speedup_floors": VEC_SPEEDUP_FLOORS,
            "vectorized_speedups": vec_speedups,
        },
    )
    if check_speedup:
        for name, speedup in speedups.items():
            assert speedup >= SPEEDUP_FACTOR, (
                f"engine speedup regressed: {name} is only {speedup:.1f}x "
                f"(target ≥{SPEEDUP_FACTOR}x) over the seed engine"
            )
        for name, speedup in vec_speedups.items():
            floor = VEC_SPEEDUP_FLOORS[name]
            assert speedup >= floor, (
                f"vectorized speedup regressed: {name} is only {speedup:.1f}x "
                f"(target ≥{floor}x) over the interpreted engine at "
                f"n={VEC_SPEEDUP_N}"
            )
    return entries


def test_bench_engine_and_speedup():
    entries = run_bench(check_speedup=True)
    assert any(entry["scenario"].startswith("speedup/") for entry in entries)
    assert any(
        entry["scenario"].startswith("vectorized-speedup/")
        and entry.get("engine") == "vectorized"
        for entry in entries
    )


if __name__ == "__main__":
    run_bench(check_speedup=True)
    print("bench_engine: all scenarios recorded, speedup targets met")
