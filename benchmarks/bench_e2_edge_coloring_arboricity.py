"""E2 — Theorem 3 on bounded-arboricity graphs.

Paper claim: (edge-degree+1)-edge colouring can be solved in
``O(a + log^{12/13} n)`` rounds on graphs of arboricity ``a ≤ 2^{log^{1/13} n}``;
in particular in ``O(log^{12/13} n)`` rounds on planar graphs.

What this benchmark regenerates: measured rounds of the Theorem 15 pipeline
on planar graphs (grids, random Apollonian triangulations) and unions of
``a`` forests for ``a ∈ {1, 2, 3, 4}``, showing the additive dependence on
``a`` (the star-collection phase) and the validity of every output.
"""

import pytest

from _harness import record_table
from repro.analysis import MeasurementTable
from repro.baselines import EdgeColoringAlgorithm
from repro.core import solve_on_bounded_arboricity
from repro.generators import forest_union, grid_graph, planar_triangulation_like
from repro.problems.classic import is_edge_degree_plus_one_coloring


def run_instance(graph, arboricity):
    result = solve_on_bounded_arboricity(graph, arboricity, EdgeColoringAlgorithm())
    assert result.verification.ok
    assert is_edge_degree_plus_one_coloring(graph, dict(result.classic))
    return result


def test_e2_report():
    table = MeasurementTable(
        "E2: (edge-degree+1)-edge colouring on bounded-arboricity graphs (Theorem 3)",
        [
            "instance",
            "n",
            "m",
            "a",
            "k",
            "peel iterations",
            "star-phase rounds",
            "total rounds",
        ],
    )
    instances = [
        ("grid 15x15", grid_graph(15, 15), 2),
        ("grid 25x25", grid_graph(25, 25), 2),
        ("planar n=200", planar_triangulation_like(200, seed=1), 3),
        ("planar n=600", planar_triangulation_like(600, seed=2), 3),
        ("1 forest, n=400", forest_union(400, 1, seed=3), 1),
        ("2 forests, n=400", forest_union(400, 2, seed=3), 2),
        ("3 forests, n=400", forest_union(400, 3, seed=3), 3),
        ("4 forests, n=400", forest_union(400, 4, seed=3), 4),
    ]
    for name, graph, arboricity in instances:
        result = run_instance(graph, arboricity)
        table.add_row(
            name,
            graph.number_of_nodes(),
            graph.number_of_edges(),
            arboricity,
            result.k,
            result.details["iterations"],
            result.ledger.breakdown()["star collections (gather & solve)"],
            result.rounds,
        )
    record_table("e2_edge_coloring_arboricity", table)


def test_e2_star_phase_grows_linearly_with_arboricity():
    """The `a` term of Theorem 15: the finishing phase costs Θ(a) rounds."""
    rounds = {}
    for arboricity in (1, 2, 4):
        graph = forest_union(300, arboricity, seed=5)
        result = run_instance(graph, arboricity)
        rounds[arboricity] = result.ledger.breakdown()[
            "star collections (gather & solve)"
        ]
    assert rounds[2] == 2 * rounds[1]
    assert rounds[4] == 4 * rounds[1]


@pytest.mark.parametrize(
    "maker,arboricity",
    [
        (lambda: grid_graph(15, 15), 2),
        (lambda: planar_triangulation_like(300, seed=9), 3),
    ],
    ids=["grid", "planar"],
)
def test_e2_benchmark_bounded_arboricity(benchmark, maker, arboricity):
    graph = maker()
    result = benchmark(lambda: run_instance(graph, arboricity))
    assert result.rounds > 0
