"""E1 — Theorem 3 on trees: (edge-degree+1)-edge colouring.

Paper claim: (edge-degree+1)-edge colouring can be solved in
``O(log^{12/13} n)`` rounds on trees, breaking the
``Ω(log n / log log n)`` barrier that holds for MIS and maximal matching.

What this benchmark regenerates:

* measured round counts of the full Theorem 15 pipeline (arboricity 1) on a
  sweep of random and balanced trees, with the implemented truly local
  algorithm (``f(Δ) = O(Δ²)``),
* the charged round counts when the paper-cited ``f(Δ) = log^{12} Δ`` cost
  model is plugged in for the black-box phase, and
* the reference curves ``log₂ n`` and ``log n / log log n``.
"""

import math

import pytest

from _harness import record_table
from repro.analysis import MeasurementTable
from repro.baselines import EdgeColoringAlgorithm, OracleCostModel
from repro.core import polylog, solve_on_bounded_arboricity
from repro.core.complexity import mm_mis_tree_bound
from repro.generators import balanced_regular_tree, random_tree
from repro.problems.classic import is_edge_degree_plus_one_coloring

SIZES = [100, 300, 1000, 3000]


def run_instance(tree, cost_model=None):
    result = solve_on_bounded_arboricity(
        tree, arboricity=1, algorithm=EdgeColoringAlgorithm(), cost_model=cost_model
    )
    assert result.verification.ok
    assert is_edge_degree_plus_one_coloring(tree, dict(result.classic))
    return result


def test_e1_report():
    table = MeasurementTable(
        "E1: (edge-degree+1)-edge colouring on trees (Theorem 3, tree case)",
        [
            "instance",
            "n",
            "k",
            "rounds (measured, f=Δ²)",
            "rounds (charged, f=log^12 Δ)",
            "rounds (charged, f=log² Δ)",
            "log2 n",
            "log n / log log n",
        ],
    )
    bbko = OracleCostModel("bbko22b", polylog(12))
    mild = OracleCostModel("hypothetical-log2", polylog(2))
    for n in SIZES:
        tree = random_tree(n, seed=101)
        measured = run_instance(tree)
        charged_12 = run_instance(tree, cost_model=bbko)
        charged_2 = run_instance(tree, cost_model=mild)
        table.add_row(
            "random tree",
            n,
            measured.k,
            measured.rounds,
            charged_12.charged_rounds,
            charged_2.charged_rounds,
            round(math.log2(n), 1),
            round(mm_mis_tree_bound(n), 1),
        )
    for depth in (5, 7, 9):
        tree = balanced_regular_tree(3, depth)
        measured = run_instance(tree)
        charged_12 = run_instance(tree, cost_model=bbko)
        charged_2 = run_instance(tree, cost_model=mild)
        n = tree.number_of_nodes()
        table.add_row(
            "3-regular balanced",
            n,
            measured.k,
            measured.rounds,
            charged_12.charged_rounds,
            charged_2.charged_rounds,
            round(math.log2(n), 1),
            round(mm_mis_tree_bound(n), 1),
        )
    record_table("e1_edge_coloring_trees", table)


def test_e1_rounds_do_not_scale_with_n_once_k_is_fixed():
    """With the cut-off fixed, the A-phase is independent of n — the round
    count growth comes solely from the decomposition depth."""
    small = run_instance(random_tree(300, seed=7))
    large = run_instance(random_tree(3000, seed=7))
    small_a = small.ledger.breakdown()["truly-local algorithm A"]
    large_a = large.ledger.breakdown()["truly-local algorithm A"]
    assert abs(large_a - small_a) <= 0.5 * small_a


@pytest.mark.parametrize("n", [300, 1000])
def test_e1_benchmark_transformed_edge_coloring(benchmark, n):
    tree = random_tree(n, seed=11)
    result = benchmark(lambda: run_instance(tree))
    assert result.rounds > 0
