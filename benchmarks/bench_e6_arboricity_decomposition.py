"""E6 — Lemmas 13 and 14: quality of the bounded-arboricity Decomposition.

Paper claims (Algorithm 3 with ``b = 2a`` and ``k ≥ 5a``):

* Lemma 13: all nodes are marked within ``⌈10 log_{k/a} n⌉ + 1`` iterations;
* Lemma 14: the graph induced by typical edges has maximum degree at most
  ``k``; every node has at most ``b = 2a`` atypical edges towards higher
  neighbours; the star collections ``F_{i,j}`` consist of stars.

What this benchmark regenerates: the measured iteration counts, typical
degrees, atypical budgets and star checks over a (graph family × k) sweep,
plus the b-ablation called out in DESIGN.md.
"""

import pytest

from _harness import record_table
from repro.analysis import MeasurementTable
from repro.decomposition import arboricity_decomposition
from repro.generators import forest_union, grid_graph, planar_triangulation_like


def instances():
    return [
        ("grid 20x20", grid_graph(20, 20), 2),
        ("planar n=500", planar_triangulation_like(500, seed=1), 3),
        ("2 forests n=600", forest_union(600, 2, seed=2), 2),
        ("4 forests n=400", forest_union(400, 4, seed=3), 4),
    ]


def test_e6_report():
    table = MeasurementTable(
        "E6: bounded-arboricity decomposition quality (Algorithm 3, Lemmas 13-14)",
        [
            "instance",
            "n",
            "a",
            "k",
            "iterations",
            "Lemma 13 bound",
            "typical max degree (<= k)",
            "max atypical per node (<= 2a)",
            "star collections",
            "all stars",
        ],
    )
    for name, graph, arboricity in instances():
        for k in (5 * arboricity, 10 * arboricity, 20 * arboricity):
            decomposition = arboricity_decomposition(graph, arboricity, k)
            table.add_row(
                name,
                graph.number_of_nodes(),
                arboricity,
                k,
                decomposition.iterations,
                decomposition.theoretical_layer_bound(),
                decomposition.typical_max_degree(),
                decomposition.max_atypical_per_lower_endpoint(),
                len(decomposition.star_collections),
                decomposition.star_components_are_stars(),
            )
            assert decomposition.iterations <= decomposition.theoretical_layer_bound()
            assert decomposition.typical_max_degree() <= k
            assert decomposition.max_atypical_per_lower_endpoint() <= decomposition.b
            assert decomposition.star_components_are_stars()
    record_table("e6_arboricity_decomposition", table)


def test_e6_b_ablation():
    """Ablation of the b = 2a choice: larger b admits more atypical edges per
    node (more forests to finish sequentially), smaller b slows the peeling."""
    graph = planar_triangulation_like(400, seed=5)
    table = MeasurementTable(
        "E6 ablation: the high-degree-neighbour budget b (a=3, k=15)",
        ["b", "iterations", "atypical edges", "max atypical per node"],
    )
    for b in (4, 6, 9, 12):
        decomposition = arboricity_decomposition(graph, 3, 15, b=b)
        table.add_row(
            b,
            decomposition.iterations,
            len(decomposition.atypical_edges),
            decomposition.max_atypical_per_lower_endpoint(),
        )
        assert decomposition.max_atypical_per_lower_endpoint() <= b
    record_table("e6_b_ablation", table)


@pytest.mark.parametrize("name,maker,a", [
    ("grid", lambda: grid_graph(20, 20), 2),
    ("planar", lambda: planar_triangulation_like(400, seed=7), 3),
])
def test_e6_benchmark_decomposition(benchmark, name, maker, a):
    graph = maker()
    decomposition = benchmark(lambda: arboricity_decomposition(graph, a, 5 * a))
    assert decomposition.iterations >= 1
