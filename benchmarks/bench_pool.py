"""Persistent worker pool vs. per-sweep ProcessPoolExecutor.

The service claim (ROADMAP "heavy traffic" item): on many-small-cell
workloads the dominant cost of the `SweepRunner` path is *not* the cells —
it is creating a fresh process pool per sweep and paying one task
round trip per cell.  `WorkerPool` keeps the workers warm across sweeps
and ships cells in batches, so the same job stream should run measurably
faster.

This benchmark replays the same stream of small sweeps through both paths
and asserts the pool's speedup stays above a conservative floor
(:data:`SPEEDUP_FLOOR`), recording both wall clocks in
``benchmarks/results/bench_pool.json`` so the trajectory is visible per
PR.  ``BENCH_SMOKE=1`` shrinks the stream for CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_pool.py
    BENCH_SMOKE=1 PYTHONPATH=src python benchmarks/bench_pool.py
"""

import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from _harness import record_json, scenario_entry  # noqa: E402

from repro.experiments import ResultStore, ScenarioSpec, Suite, SweepRunner
from repro.service import WorkerPool

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

#: The pool must beat the per-sweep-executor path by at least this factor
#: on the many-small-cell stream.  Measured speedups are far higher (the
#: executor path pays ~worker-count process startups per sweep); the floor
#: only guards against a regression that loses the amortisation.
SPEEDUP_FLOOR = 1.1

WORKERS = 2
SWEEPS = 3 if SMOKE else 6
SEEDS = tuple(range(1, 6 if SMOKE else 11))
SIZES = (12, 16, 20, 24)

#: Each path is measured this many times and the best run is kept, so a
#: single scheduling hiccup on a noisy CI runner cannot sink the ratio.
REPEATS = 3


def small_cell_suite(tag: int) -> Suite:
    """One sweep's worth of tiny cells (distinct per-sweep seeds via tag)."""
    return Suite(
        name=f"bench-pool-{tag}",
        description="many small cells: forest 3-colouring on tiny random trees",
        scenarios=(
            ScenarioSpec(
                name="forest-3coloring/tiny-trees",
                generator="random-tree",
                algorithm="baseline-forest-3coloring",
                sizes=SIZES,
                seeds=tuple(seed + 100 * tag for seed in SEEDS),
            ),
        ),
    )


def run_executor_stream(base_dir: str) -> float:
    """The PR 2 path: a fresh ProcessPoolExecutor per sweep, 1 cell/task."""
    start = time.perf_counter()
    for sweep in range(SWEEPS):
        store = ResultStore(os.path.join(base_dir, f"executor-{sweep}"))
        report = SweepRunner(small_cell_suite(sweep), store, jobs=WORKERS).run()
        assert report.ok, f"executor sweep {sweep} failed: {report.failures}"
    return time.perf_counter() - start


def run_pool_stream(base_dir: str) -> float:
    """The service path: one warm pool serving every sweep, batched cells."""
    start = time.perf_counter()
    with WorkerPool(workers=WORKERS) as pool:
        for sweep in range(SWEEPS):
            store = ResultStore(os.path.join(base_dir, f"pool-{sweep}"))
            report = pool.run_suite(small_cell_suite(sweep), store)
            assert report.ok, f"pool sweep {sweep} failed: {report.failures}"
    return time.perf_counter() - start


def best_of(stream, base_dir: str) -> float:
    """The fastest of :data:`REPEATS` runs (fresh store dirs each time,
    so resume-skipping can never shortcut a repeat)."""
    return min(
        stream(os.path.join(base_dir, f"repeat-{repeat}"))
        for repeat in range(REPEATS)
    )


def main() -> None:
    import tempfile

    cells_per_sweep = len(SIZES) * len(SEEDS)
    print(
        f"bench_pool: {SWEEPS} sweeps x {cells_per_sweep} cells, "
        f"{WORKERS} workers (smoke={SMOKE})"
    )
    with tempfile.TemporaryDirectory(prefix="bench_pool") as base_dir:
        executor_s = best_of(run_executor_stream, os.path.join(base_dir, "executor"))
        pool_s = best_of(run_pool_stream, os.path.join(base_dir, "pool"))

    speedup = executor_s / pool_s if pool_s > 0 else float("inf")
    print(f"  per-sweep executor: {executor_s:.3f}s")
    print(f"  persistent pool:    {pool_s:.3f}s")
    print(f"  speedup:            {speedup:.2f}x (floor: {SPEEDUP_FLOOR}x)")

    record_json(
        "bench_pool",
        [
            scenario_entry(
                "executor-per-sweep", cells_per_sweep * SWEEPS, executor_s,
                sweeps=SWEEPS, workers=WORKERS,
            ),
            scenario_entry(
                "persistent-pool", cells_per_sweep * SWEEPS, pool_s,
                sweeps=SWEEPS, workers=WORKERS, speedup=round(speedup, 3),
            ),
        ],
        meta={"smoke": SMOKE, "speedup_floor": SPEEDUP_FLOOR},
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"persistent pool speedup {speedup:.2f}x fell below the "
        f"{SPEEDUP_FLOOR}x floor over the per-sweep executor path"
    )


if __name__ == "__main__":
    main()
